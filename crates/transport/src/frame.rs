//! The frame protocol: length-prefixed, checksummed binary frames over a
//! byte stream.
//!
//! Every frame is a fixed 20-byte header followed by a payload:
//!
//! ```text
//! offset  size  field
//!      0     4  magic "SPWF"
//!      4     2  protocol version (currently 1)
//!      6     2  frame type
//!      8     4  payload length (≤ 64 MiB; larger declarations are rejected
//!               before any allocation)
//!     12     8  FNV-1a checksum over the version/type/length fields and
//!               the payload
//!     20     …  payload (per-frame-type encoding, see [`Frame`])
//! ```
//!
//! All integers are little-endian. The reader validates magic, version,
//! frame type, declared length and checksum *in that order*, each failure a
//! distinct [`TransportError`] — a hostile or truncated stream can never
//! panic the peer. Each streamed frame carries its own checksum (rather
//! than one end-of-stream digest) because patterns are consumed
//! incrementally: the client may act on pattern N while N+1 is still being
//! mined, so corruption must be detected per frame, before the payload is
//! handed to the application, not after the stream ends.

use crate::error::{TransportError, WireRejection};
use spidermine_engine::wire::{WireReader, WireWriter};
use spidermine_faultline::{self as faultline, FaultKind, FaultSite};
use spidermine_graph::signature::StableHasher;
use spidermine_service::{CacheStats, ClientStats, ServiceMetrics};
use std::io::{self, Read};
use std::time::Duration;

/// Frame magic: "SPiderWire Frame".
pub const MAGIC: [u8; 4] = *b"SPWF";
/// Protocol version spoken by this build.
pub const PROTOCOL_VERSION: u16 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 20;
/// Hard cap on a single frame's payload. A header declaring more is
/// rejected with [`TransportError::Oversized`] before any allocation.
pub const MAX_PAYLOAD: usize = 64 << 20;

mod frame_type {
    pub const HELLO: u16 = 1;
    pub const HELLO_ACK: u16 = 2;
    pub const REQUEST: u16 = 3;
    pub const CANCEL: u16 = 4;
    pub const STATS_REQUEST: u16 = 5;
    pub const HEARTBEAT: u16 = 6;
    pub const METRICS_REQUEST: u16 = 7;
    pub const TRACE_REQUEST: u16 = 8;
    pub const ACCEPTED: u16 = 16;
    pub const REJECTED: u16 = 17;
    pub const PATTERN: u16 = 18;
    pub const DONE: u16 = 19;
    pub const FAILED: u16 = 20;
    pub const STATS: u16 = 21;
    pub const GOODBYE: u16 = 22;
    pub const DRAINING: u16 = 23;
    pub const METRICS: u16 = 24;
    pub const TRACE: u16 = 25;
}

/// One entry of a `Done` frame's outcome-order table: how to materialize
/// outcome pattern *i* on the client.
///
/// Miners emit patterns as they are *accepted*, but an outcome's `patterns`
/// list may be reordered afterwards (SpiderMine sorts its result), so the
/// streamed sequence and the final list can disagree on order. The table
/// maps each outcome position to the streamed frame carrying those exact
/// bytes; a pattern that (exceptionally) never streamed rides inline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternRef {
    /// Outcome pattern *i* is byte-identical to streamed frame `seq`.
    Streamed(u64),
    /// Outcome pattern *i* carried inline (encoded
    /// [`spidermine_engine::StreamedPattern`] bytes).
    Inline(Vec<u8>),
}

/// Every frame the protocol speaks. Client → server: `Hello`, `Request`,
/// `Cancel`, `StatsRequest`. Server → client: the rest.
#[derive(Debug, Clone)]
pub enum Frame {
    /// Opens a connection: the client names itself for per-client
    /// attribution and quotas.
    Hello {
        /// Client name (≤ 256 bytes).
        client: String,
    },
    /// Handshake answer.
    HelloAck {
        /// The server's per-client in-flight quota, so clients can pace.
        max_inflight: u64,
        /// The server's idle-connection timeout in milliseconds (0 = none).
        /// A client must send *something* — a [`Frame::Heartbeat`] suffices —
        /// within each window or the server reaps the connection as
        /// half-open.
        idle_timeout_ms: u64,
    },
    /// Submit a mining request against a named catalog graph.
    Request {
        /// Client-chosen id, echoed on every response frame for this job.
        id: u64,
        /// Catalog graph name.
        graph: String,
        /// [`spidermine_engine::wire::encode_request`] bytes.
        request: Vec<u8>,
        /// Telemetry trace id minted by the client (0 = untraced). The
        /// server adopts it for the job's spans, so client- and server-side
        /// events of one job line up under one trace.
        trace: u64,
    },
    /// Fire the cancel token of an in-flight request.
    Cancel {
        /// The request to cancel.
        id: u64,
    },
    /// Ask for service metrics (including per-client counters).
    StatsRequest {
        /// Client-chosen id echoed on the `Stats` answer.
        id: u64,
    },
    /// Ask for the server's telemetry registry in Prometheus text format.
    MetricsRequest {
        /// Client-chosen id echoed on the `Metrics` answer.
        id: u64,
    },
    /// Ask for the server's captured trace events as Chrome trace-event
    /// JSON (empty unless the server runs with tracing armed).
    TraceRequest {
        /// Client-chosen id echoed on the `Trace` answer.
        id: u64,
    },
    /// Connection keep-alive: no payload, no answer. Sent by idle clients so
    /// the server's idle-timeout reaper can tell "quiet but alive" from
    /// "half-open".
    Heartbeat,
    /// The request was admitted to the scheduler.
    Accepted {
        /// Echo of the request id.
        id: u64,
        /// The server-side job id.
        job: u64,
    },
    /// The request was refused; the connection stays usable.
    Rejected {
        /// Echo of the request id.
        id: u64,
        /// Why.
        rejection: WireRejection,
    },
    /// One accepted pattern, streamed while the job is still running.
    Pattern {
        /// Echo of the request id.
        id: u64,
        /// Position in this request's streamed sequence (0-based).
        seq: u64,
        /// [`spidermine_engine::wire::encode_pattern`] bytes.
        pattern: Vec<u8>,
    },
    /// The job reached a terminal non-error state (done or cancelled).
    Done {
        /// Echo of the request id.
        id: u64,
        /// True if the outcome was served from the result cache.
        from_cache: bool,
        /// [`spidermine_engine::wire::encode_outcome_meta`] bytes.
        meta: Vec<u8>,
        /// Outcome-order table; see [`PatternRef`].
        order: Vec<PatternRef>,
        /// Telemetry trace id the server ran the job under (echo of the
        /// request's `trace`, or a server-minted id when that was 0).
        trace: u64,
    },
    /// The job ran and failed (engine error or caught panic).
    Failed {
        /// Echo of the request id.
        id: u64,
        /// The server-side error rendering.
        message: String,
    },
    /// Answer to `StatsRequest`.
    Stats {
        /// Echo of the request id.
        id: u64,
        /// Service-wide counters at answer time.
        metrics: ServiceMetrics,
    },
    /// Answer to `MetricsRequest`.
    Metrics {
        /// Echo of the request id.
        id: u64,
        /// Prometheus text exposition of the server's telemetry registries
        /// (per-service + process-global).
        text: String,
    },
    /// Answer to `TraceRequest`.
    Trace {
        /// Echo of the request id.
        id: u64,
        /// Chrome trace-event JSON of the server's captured span/instant
        /// events (load in `chrome://tracing` or Perfetto).
        json: String,
    },
    /// The peer is closing this connection deliberately.
    Goodbye {
        /// A connection-level rejection (e.g. the connection cap), if any.
        rejection: Option<WireRejection>,
        /// Human-readable reason.
        message: String,
    },
    /// The server has begun a graceful drain: new requests will be rejected
    /// with [`WireRejection::ShuttingDown`], in-flight jobs get until the
    /// deadline to finish, then the connection closes. Unlike `Goodbye`,
    /// the connection stays open so in-flight results can still stream.
    Draining {
        /// How long in-flight work has to finish, in milliseconds.
        deadline_ms: u64,
    },
}

impl Frame {
    fn frame_type(&self) -> u16 {
        match self {
            Frame::Hello { .. } => frame_type::HELLO,
            Frame::HelloAck { .. } => frame_type::HELLO_ACK,
            Frame::Request { .. } => frame_type::REQUEST,
            Frame::Cancel { .. } => frame_type::CANCEL,
            Frame::StatsRequest { .. } => frame_type::STATS_REQUEST,
            Frame::MetricsRequest { .. } => frame_type::METRICS_REQUEST,
            Frame::TraceRequest { .. } => frame_type::TRACE_REQUEST,
            Frame::Heartbeat => frame_type::HEARTBEAT,
            Frame::Accepted { .. } => frame_type::ACCEPTED,
            Frame::Rejected { .. } => frame_type::REJECTED,
            Frame::Pattern { .. } => frame_type::PATTERN,
            Frame::Done { .. } => frame_type::DONE,
            Frame::Failed { .. } => frame_type::FAILED,
            Frame::Stats { .. } => frame_type::STATS,
            Frame::Metrics { .. } => frame_type::METRICS,
            Frame::Trace { .. } => frame_type::TRACE,
            Frame::Goodbye { .. } => frame_type::GOODBYE,
            Frame::Draining { .. } => frame_type::DRAINING,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Frame::Hello { client } => w.put_str(client),
            Frame::HelloAck {
                max_inflight,
                idle_timeout_ms,
            } => {
                w.put_u64(*max_inflight);
                w.put_u64(*idle_timeout_ms);
            }
            Frame::Heartbeat => {}
            Frame::Request {
                id,
                graph,
                request,
                trace,
            } => {
                w.put_u64(*id);
                w.put_str(graph);
                w.put_bytes(request);
                w.put_u64(*trace);
            }
            Frame::Cancel { id }
            | Frame::StatsRequest { id }
            | Frame::MetricsRequest { id }
            | Frame::TraceRequest { id } => w.put_u64(*id),
            Frame::Accepted { id, job } => {
                w.put_u64(*id);
                w.put_u64(*job);
            }
            Frame::Rejected { id, rejection } => {
                w.put_u64(*id);
                put_rejection(&mut w, rejection);
            }
            Frame::Pattern { id, seq, pattern } => {
                w.put_u64(*id);
                w.put_u64(*seq);
                w.put_bytes(pattern);
            }
            Frame::Done {
                id,
                from_cache,
                meta,
                order,
                trace,
            } => {
                w.put_u64(*id);
                w.put_u64(*trace);
                w.put_u8(*from_cache as u8);
                w.put_bytes(meta);
                w.put_u32(order.len() as u32);
                for entry in order {
                    match entry {
                        PatternRef::Streamed(seq) => {
                            w.put_u8(0);
                            w.put_u64(*seq);
                        }
                        PatternRef::Inline(bytes) => {
                            w.put_u8(1);
                            w.put_bytes(bytes);
                        }
                    }
                }
            }
            Frame::Failed { id, message } => {
                w.put_u64(*id);
                w.put_str(message);
            }
            Frame::Stats { id, metrics } => {
                w.put_u64(*id);
                put_metrics(&mut w, metrics);
            }
            Frame::Metrics { id, text } => {
                w.put_u64(*id);
                w.put_str(text);
            }
            Frame::Trace { id, json } => {
                w.put_u64(*id);
                w.put_str(json);
            }
            Frame::Goodbye { rejection, message } => {
                match rejection {
                    Some(rejection) => {
                        w.put_u8(1);
                        put_rejection(&mut w, rejection);
                    }
                    None => w.put_u8(0),
                }
                w.put_str(message);
            }
            Frame::Draining { deadline_ms } => w.put_u64(*deadline_ms),
        }
        w.into_bytes()
    }

    fn decode(frame_type: u16, payload: &[u8]) -> Result<Frame, TransportError> {
        let mut r = WireReader::new(payload);
        let frame = match frame_type {
            frame_type::HELLO => Frame::Hello {
                client: r.get_str()?.to_owned(),
            },
            frame_type::HELLO_ACK => Frame::HelloAck {
                max_inflight: r.get_u64()?,
                idle_timeout_ms: r.get_u64()?,
            },
            frame_type::HEARTBEAT => Frame::Heartbeat,
            frame_type::REQUEST => Frame::Request {
                id: r.get_u64()?,
                graph: r.get_str()?.to_owned(),
                request: r.get_bytes()?.to_vec(),
                trace: r.get_u64()?,
            },
            frame_type::CANCEL => Frame::Cancel { id: r.get_u64()? },
            frame_type::STATS_REQUEST => Frame::StatsRequest { id: r.get_u64()? },
            frame_type::METRICS_REQUEST => Frame::MetricsRequest { id: r.get_u64()? },
            frame_type::TRACE_REQUEST => Frame::TraceRequest { id: r.get_u64()? },
            frame_type::ACCEPTED => Frame::Accepted {
                id: r.get_u64()?,
                job: r.get_u64()?,
            },
            frame_type::REJECTED => Frame::Rejected {
                id: r.get_u64()?,
                rejection: get_rejection(&mut r)?,
            },
            frame_type::PATTERN => Frame::Pattern {
                id: r.get_u64()?,
                seq: r.get_u64()?,
                pattern: r.get_bytes()?.to_vec(),
            },
            frame_type::DONE => {
                let id = r.get_u64()?;
                let trace = r.get_u64()?;
                let from_cache = match r.get_u8()? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(TransportError::Corrupt(format!(
                            "invalid from_cache byte {other}"
                        )))
                    }
                };
                let meta = r.get_bytes()?.to_vec();
                let count = r.get_u32()? as usize;
                let mut order = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    order.push(match r.get_u8()? {
                        0 => PatternRef::Streamed(r.get_u64()?),
                        1 => PatternRef::Inline(r.get_bytes()?.to_vec()),
                        other => {
                            return Err(TransportError::Corrupt(format!(
                                "invalid pattern-ref tag {other}"
                            )))
                        }
                    });
                }
                Frame::Done {
                    id,
                    from_cache,
                    meta,
                    order,
                    trace,
                }
            }
            frame_type::FAILED => Frame::Failed {
                id: r.get_u64()?,
                message: r.get_str()?.to_owned(),
            },
            frame_type::STATS => Frame::Stats {
                id: r.get_u64()?,
                metrics: get_metrics(&mut r)?,
            },
            frame_type::METRICS => Frame::Metrics {
                id: r.get_u64()?,
                text: r.get_str()?.to_owned(),
            },
            frame_type::TRACE => Frame::Trace {
                id: r.get_u64()?,
                json: r.get_str()?.to_owned(),
            },
            frame_type::GOODBYE => {
                let rejection = match r.get_u8()? {
                    0 => None,
                    1 => Some(get_rejection(&mut r)?),
                    other => {
                        return Err(TransportError::Corrupt(format!(
                            "invalid rejection-presence byte {other}"
                        )))
                    }
                };
                Frame::Goodbye {
                    rejection,
                    message: r.get_str()?.to_owned(),
                }
            }
            frame_type::DRAINING => Frame::Draining {
                deadline_ms: r.get_u64()?,
            },
            other => return Err(TransportError::UnknownFrameType(other)),
        };
        r.finish()?;
        Ok(frame)
    }
}

fn put_rejection(w: &mut WireWriter, rejection: &WireRejection) {
    match rejection {
        WireRejection::QueueFull { depth, limit } => {
            w.put_u16(1);
            w.put_u64(*depth);
            w.put_u64(*limit);
        }
        WireRejection::QuotaExceeded { in_flight, limit } => {
            w.put_u16(2);
            w.put_u64(*in_flight);
            w.put_u64(*limit);
        }
        WireRejection::UnknownGraph(name) => {
            w.put_u16(3);
            w.put_str(name);
        }
        WireRejection::InvalidRequest(message) => {
            w.put_u16(4);
            w.put_str(message);
        }
        WireRejection::ShuttingDown => w.put_u16(5),
        WireRejection::TooManyConnections { limit } => {
            w.put_u16(6);
            w.put_u64(*limit);
        }
    }
}

fn get_rejection(r: &mut WireReader<'_>) -> Result<WireRejection, TransportError> {
    Ok(match r.get_u16()? {
        1 => WireRejection::QueueFull {
            depth: r.get_u64()?,
            limit: r.get_u64()?,
        },
        2 => WireRejection::QuotaExceeded {
            in_flight: r.get_u64()?,
            limit: r.get_u64()?,
        },
        3 => WireRejection::UnknownGraph(r.get_str()?.to_owned()),
        4 => WireRejection::InvalidRequest(r.get_str()?.to_owned()),
        5 => WireRejection::ShuttingDown,
        6 => WireRejection::TooManyConnections {
            limit: r.get_u64()?,
        },
        other => {
            return Err(TransportError::Corrupt(format!(
                "unknown rejection code {other}"
            )))
        }
    })
}

fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn put_metrics(w: &mut WireWriter, m: &ServiceMetrics) {
    w.put_u64(m.submitted);
    w.put_u64(m.rejected);
    w.put_u64(m.completed);
    w.put_u64(m.cancelled);
    w.put_u64(m.failed);
    w.put_u64(m.retries);
    w.put_u64(duration_ns(m.queue_wait_total));
    w.put_u64(duration_ns(m.run_time_total));
    w.put_u64(m.patterns_emitted);
    w.put_u64(m.embeddings_dropped);
    w.put_u64(m.cache.hits);
    w.put_u64(m.cache.misses);
    w.put_u64(m.cache.evictions);
    w.put_u64(m.cache.entries as u64);
    w.put_u64(m.queue_depth as u64);
    w.put_u32(m.clients.len() as u32);
    for (client, stats) in &m.clients {
        w.put_str(client);
        w.put_u64(stats.accepted);
        w.put_u64(stats.rejected);
        w.put_u64(stats.patterns_streamed);
        w.put_u64(stats.bytes_streamed);
    }
}

fn get_metrics(r: &mut WireReader<'_>) -> Result<ServiceMetrics, TransportError> {
    let mut m = ServiceMetrics {
        submitted: r.get_u64()?,
        rejected: r.get_u64()?,
        completed: r.get_u64()?,
        cancelled: r.get_u64()?,
        failed: r.get_u64()?,
        retries: r.get_u64()?,
        queue_wait_total: Duration::from_nanos(r.get_u64()?),
        run_time_total: Duration::from_nanos(r.get_u64()?),
        patterns_emitted: r.get_u64()?,
        embeddings_dropped: r.get_u64()?,
        cache: CacheStats::default(),
        queue_depth: 0,
        clients: Vec::new(),
    };
    m.cache.hits = r.get_u64()?;
    m.cache.misses = r.get_u64()?;
    m.cache.evictions = r.get_u64()?;
    m.cache.entries = r.get_u64()? as usize;
    m.queue_depth = r.get_u64()? as usize;
    let count = r.get_u32()? as usize;
    let mut clients = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let name = r.get_str()?.to_owned();
        let stats = ClientStats {
            accepted: r.get_u64()?,
            rejected: r.get_u64()?,
            patterns_streamed: r.get_u64()?,
            bytes_streamed: r.get_u64()?,
        };
        clients.push((name, stats));
    }
    m.clients = clients;
    Ok(m)
}

/// FNV-1a over the header's version/type/length fields *and* the payload.
/// Covering the semantic header fields means a bit-flip anywhere in a frame
/// (except the magic, caught by direct comparison, and the checksum field
/// itself, caught by mismatch) is always detectable.
fn checksum(version: u16, frame_type: u16, declared: u32, payload: &[u8]) -> u64 {
    let mut hasher = StableHasher::new();
    hasher.write_u64(
        u64::from(version) | (u64::from(frame_type) << 16) | (u64::from(declared) << 32),
    );
    hasher.write_bytes(payload);
    hasher.finish()
}

/// Encodes one frame: header (magic, version, type, length, checksum) plus
/// payload, ready to write to a socket in a single call.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let payload = frame.payload();
    debug_assert!(payload.len() <= MAX_PAYLOAD, "oversized frame produced");
    let frame_type = frame.frame_type();
    let declared = payload.len() as u32;
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    bytes.extend_from_slice(&frame_type.to_le_bytes());
    bytes.extend_from_slice(&declared.to_le_bytes());
    bytes.extend_from_slice(
        &checksum(PROTOCOL_VERSION, frame_type, declared, &payload).to_le_bytes(),
    );
    bytes.extend_from_slice(&payload);
    bytes
}

/// Reads exactly `buf.len()` bytes. Distinguishes the peer closing at a
/// frame boundary (`Closed`, only when `at_boundary`) from mid-frame
/// truncation.
fn read_exact_or(
    reader: &mut impl Read,
    buf: &mut [u8],
    frame_bytes_owed: usize,
    at_boundary: bool,
) -> Result<(), TransportError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                if at_boundary && filled == 0 {
                    return Err(TransportError::Closed);
                }
                return Err(TransportError::Truncated {
                    expected: frame_bytes_owed,
                    actual: frame_bytes_owed - (buf.len() - filled),
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // A read timeout (from `set_read_timeout`) gets its own variant:
            // the server's idle reaper treats it as "peer possibly half-open",
            // which is a different decision than an OS-level socket error.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Err(TransportError::TimedOut)
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Reads and validates one frame from `reader`.
///
/// Validation order: magic, version, frame type, declared length (capped at
/// [`MAX_PAYLOAD`] *before* allocating), payload checksum, then the
/// per-frame payload decoding — each failure its own [`TransportError`]
/// variant. A clean close at a frame boundary is [`TransportError::Closed`];
/// an EOF anywhere inside a frame is [`TransportError::Truncated`].
pub fn read_frame(reader: &mut impl Read) -> Result<Frame, TransportError> {
    // Deterministic fault injection (no-op single atomic load when
    // disarmed). Error/Disconnect short-circuit before touching the stream
    // — both tear the connection down, exactly as the real failures would;
    // corruption kinds are applied to the payload after it is read, below.
    let injected = faultline::check(FaultSite::WireRead);
    match injected {
        Some(FaultKind::Error) => {
            return Err(TransportError::Io("injected transient read fault".into()))
        }
        Some(FaultKind::Disconnect) => return Err(TransportError::Closed),
        _ => {}
    }
    let mut header = [0u8; HEADER_LEN];
    read_exact_or(reader, &mut header, HEADER_LEN, true)?;
    let magic: [u8; 4] = header[0..4].try_into().unwrap();
    if magic != MAGIC {
        return Err(TransportError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
    if version != PROTOCOL_VERSION {
        return Err(TransportError::UnsupportedVersion(version));
    }
    let frame_type = u16::from_le_bytes(header[6..8].try_into().unwrap());
    if !matches!(frame_type, 1..=8 | 16..=25) {
        return Err(TransportError::UnknownFrameType(frame_type));
    }
    let declared = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
    if declared > MAX_PAYLOAD {
        return Err(TransportError::Oversized {
            declared,
            limit: MAX_PAYLOAD,
        });
    }
    let stored = u64::from_le_bytes(header[12..20].try_into().unwrap());
    let mut payload = vec![0u8; declared];
    read_exact_or(reader, &mut payload, HEADER_LEN + declared, false)?;
    if let Some(kind @ (FaultKind::BitFlip { .. } | FaultKind::Truncate { .. })) = injected {
        faultline::corrupt_buffer(&mut payload, kind);
        if matches!(kind, FaultKind::Truncate { .. }) {
            // A short payload is exactly what mid-frame EOF produces.
            return Err(TransportError::Truncated {
                expected: HEADER_LEN + declared,
                actual: HEADER_LEN + payload.len(),
            });
        }
        // A bit-flip falls through to the checksum, which must catch it.
    }
    let computed = checksum(version, frame_type, declared as u32, &payload);
    if stored != computed {
        return Err(TransportError::ChecksumMismatch { stored, computed });
    }
    Frame::decode(frame_type, &payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                client: "tester".into(),
            },
            Frame::HelloAck {
                max_inflight: 8,
                idle_timeout_ms: 30_000,
            },
            Frame::Heartbeat,
            Frame::Request {
                id: 7,
                graph: "web".into(),
                request: vec![1, 2, 3],
                trace: 0xABCD,
            },
            Frame::Cancel { id: 7 },
            Frame::StatsRequest { id: 9 },
            Frame::MetricsRequest { id: 10 },
            Frame::TraceRequest { id: 11 },
            Frame::Accepted { id: 7, job: 41 },
            Frame::Rejected {
                id: 7,
                rejection: WireRejection::QuotaExceeded {
                    in_flight: 4,
                    limit: 4,
                },
            },
            Frame::Pattern {
                id: 7,
                seq: 2,
                pattern: vec![9, 9, 9],
            },
            Frame::Done {
                id: 7,
                from_cache: true,
                meta: vec![5, 5],
                order: vec![PatternRef::Streamed(1), PatternRef::Inline(vec![3])],
                trace: 0xABCD,
            },
            Frame::Failed {
                id: 7,
                message: "boom".into(),
            },
            Frame::Stats {
                id: 9,
                metrics: ServiceMetrics {
                    submitted: 10,
                    completed: 9,
                    clients: vec![(
                        "tester".into(),
                        ClientStats {
                            accepted: 10,
                            rejected: 1,
                            patterns_streamed: 40,
                            bytes_streamed: 9000,
                        },
                    )],
                    ..ServiceMetrics::default()
                },
            },
            Frame::Goodbye {
                rejection: Some(WireRejection::TooManyConnections { limit: 2 }),
                message: "at capacity".into(),
            },
            Frame::Draining { deadline_ms: 1500 },
            Frame::Metrics {
                id: 10,
                text: "jobs_completed_total 9\n".into(),
            },
            Frame::Trace {
                id: 11,
                json: "{\"traceEvents\":[]}".into(),
            },
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            let decoded = read_frame(&mut bytes.as_slice()).expect("round trip");
            // Frame doesn't implement PartialEq (ServiceMetrics doesn't);
            // compare re-encodings, which are deterministic.
            assert_eq!(encode_frame(&decoded), bytes, "{frame:?}");
        }
    }

    #[test]
    fn close_at_boundary_vs_truncation_mid_frame() {
        assert_eq!(
            read_frame(&mut [].as_slice()).unwrap_err(),
            TransportError::Closed
        );
        let bytes = encode_frame(&Frame::Cancel { id: 3 });
        for len in 1..bytes.len() {
            let err = read_frame(&mut &bytes[..len]).unwrap_err();
            assert!(
                matches!(err, TransportError::Truncated { .. }),
                "cut at {len} gave {err:?}"
            );
        }
    }

    #[test]
    fn header_corruption_yields_the_specific_error() {
        let good = encode_frame(&Frame::Cancel { id: 3 });

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_frame(&mut bad.as_slice()).unwrap_err(),
            TransportError::BadMagic(_)
        ));

        let mut bad = good.clone();
        bad[4] = 0xff;
        assert!(matches!(
            read_frame(&mut bad.as_slice()).unwrap_err(),
            TransportError::UnsupportedVersion(_)
        ));

        let mut bad = good.clone();
        bad[6] = 0xee;
        assert!(matches!(
            read_frame(&mut bad.as_slice()).unwrap_err(),
            TransportError::UnknownFrameType(_)
        ));

        // An absurd declared length is rejected before allocation.
        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut bad.as_slice()).unwrap_err(),
            TransportError::Oversized { .. }
        ));

        // A flipped payload bit fails the checksum.
        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0x40;
        assert!(matches!(
            read_frame(&mut bad.as_slice()).unwrap_err(),
            TransportError::ChecksumMismatch { .. }
        ));

        // A flipped stored-checksum bit too.
        let mut bad = good;
        bad[12] ^= 0x01;
        assert!(matches!(
            read_frame(&mut bad.as_slice()).unwrap_err(),
            TransportError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn every_single_bitflip_is_detected_or_harmless() {
        // Sweep: flip each bit of an encoded frame; the reader must either
        // return a typed error or decode *some* frame — never panic. Flips
        // in the payload must always be caught by the checksum.
        let bytes = encode_frame(&Frame::Request {
            id: 1,
            graph: "g".into(),
            request: vec![7; 32],
            trace: 3,
        });
        for bit in 0..bytes.len() * 8 {
            let mut flipped = bytes.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            let result = read_frame(&mut flipped.as_slice());
            if bit / 8 >= HEADER_LEN {
                assert!(
                    matches!(
                        result,
                        Err(TransportError::ChecksumMismatch { .. })
                            | Err(TransportError::Truncated { .. })
                    ),
                    "payload flip at bit {bit} gave {result:?}"
                );
            } else {
                assert!(result.is_err(), "header flip at bit {bit} decoded");
            }
        }
    }

    #[test]
    fn rejections_round_trip_with_their_fields() {
        let rejections = [
            WireRejection::QueueFull {
                depth: 64,
                limit: 64,
            },
            WireRejection::QuotaExceeded {
                in_flight: 8,
                limit: 8,
            },
            WireRejection::UnknownGraph("ghost".into()),
            WireRejection::InvalidRequest("k must be at least 1".into()),
            WireRejection::ShuttingDown,
            WireRejection::TooManyConnections { limit: 100 },
        ];
        for rejection in rejections {
            let frame = Frame::Rejected {
                id: 5,
                rejection: rejection.clone(),
            };
            match read_frame(&mut encode_frame(&frame).as_slice()).unwrap() {
                Frame::Rejected {
                    id: 5,
                    rejection: decoded,
                } => assert_eq!(decoded, rejection),
                other => panic!("decoded {other:?}"),
            }
        }
    }
}
