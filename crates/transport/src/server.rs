//! The TCP server: accept loop, per-connection reader/writer threads, edge
//! admission, and incremental pattern streaming.
//!
//! Admission happens in layers, each with a typed answer, so overload sheds
//! work at the cheapest possible point:
//!
//! 1. **Connection cap** — an accept beyond
//!    [`TransportConfig::max_connections`] is answered with a `Goodbye`
//!    carrying [`WireRejection::TooManyConnections`] and closed.
//! 2. **Per-client quota** — a `Request` from a client already at
//!    [`TransportConfig::max_inflight_per_client`] in-flight jobs is
//!    answered with a `Rejected` frame ([`WireRejection::QuotaExceeded`]);
//!    the connection stays open. Quotas are keyed by the client *name* from
//!    the handshake, so a tenant opening many sockets shares one budget.
//! 3. **Scheduler admission** — everything the in-process scheduler rejects
//!    (unknown graph, full queue, invalid request, shutdown) maps onto the
//!    equivalent [`WireRejection`].
//!
//! Admitted jobs stream: a [`PatternObserver`](spidermine_service::PatternObserver)
//! installed at submission
//! encodes each accepted pattern and queues a `Pattern` frame the moment the
//! engine emits it — a client starts consuming results while the run is
//! still mining, and duplicate requests served by the single-flight cache
//! replay the cached patterns through the same path. A client disconnect
//! (clean or mid-frame) fires the cancel token of every job the connection
//! still has in flight, so abandoned work stops burning dispatcher time.

use crate::error::{TransportError, WireRejection};
use crate::frame::{encode_frame, read_frame, Frame, PatternRef};
use spidermine_engine::wire::{encode_outcome_meta, encode_pattern};
use spidermine_engine::MineRequest;
use spidermine_faultline::{self as faultline, FaultKind, FaultSite};
use spidermine_graph::signature::StableHasher;
use spidermine_service::{JobHandle, MiningService, ServiceError, SubmitOptions};
use spidermine_telemetry as telemetry;
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Maximum accepted length of the client name in a `Hello`.
const MAX_CLIENT_NAME: usize = 256;

/// Tunables of the network edge.
#[derive(Clone, Debug)]
pub struct TransportConfig {
    /// Concurrent connections accepted; excess connections get a `Goodbye`
    /// with [`WireRejection::TooManyConnections`].
    pub max_connections: usize,
    /// In-flight requests one client name may hold across all its
    /// connections; excess requests get [`WireRejection::QuotaExceeded`].
    pub max_inflight_per_client: usize,
    /// Reap a connection that stays silent this long (`None` = never).
    /// Announced to clients in the `HelloAck` (as `idle_timeout_ms`) so
    /// they can heartbeat at a fraction of it; a half-open socket whose
    /// peer died without a FIN then releases its connection slot instead
    /// of holding it forever.
    pub idle_timeout: Option<Duration>,
}

impl Default for TransportConfig {
    fn default() -> Self {
        Self {
            max_connections: 256,
            max_inflight_per_client: 8,
            idle_timeout: None,
        }
    }
}

/// One live connection as the server tracks it: the stream clone (so
/// `shutdown` can unblock the blocked reader) and the writer-loop channel
/// (so a drain can inject a `Draining` frame serialized against the
/// connection's own response traffic).
struct ConnEntry {
    stream: TcpStream,
    frames: mpsc::Sender<Vec<u8>>,
}

struct ServerShared {
    service: Arc<MiningService>,
    config: TransportConfig,
    shutdown: AtomicBool,
    /// Set at the start of a graceful drain: connections stay open so
    /// in-flight results can finish streaming, but new `Request`s are
    /// answered with [`WireRejection::ShuttingDown`].
    draining: AtomicBool,
    /// Live connections, by id.
    connections: Mutex<HashMap<u64, ConnEntry>>,
    next_conn_id: AtomicU64,
    /// In-flight request count per client name (across connections).
    inflight: Mutex<HashMap<String, usize>>,
    /// Joinable per-connection threads. Entries accumulate until shutdown;
    /// at this server's scale (hundreds of connections) that is cheap, and
    /// joining them makes shutdown deterministic.
    threads: Mutex<Vec<JoinHandle<()>>>,
}

/// Holds one slot of a client's in-flight quota; released on drop (after
/// the job settles, or immediately if submission is rejected).
struct QuotaSlot {
    shared: Arc<ServerShared>,
    client: String,
}

impl Drop for QuotaSlot {
    fn drop(&mut self) {
        let mut inflight = self.shared.inflight.lock().expect("inflight lock");
        if let Some(count) = inflight.get_mut(&self.client) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                inflight.remove(&self.client);
            }
        }
    }
}

/// The listening server. Binding starts the accept loop;
/// [`shutdown`](MiningServer::shutdown) — or drop — closes every connection and joins
/// every thread. The [`MiningService`] is shared, not owned: the caller can
/// keep submitting in-process work beside the network edge.
pub struct MiningServer {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Option<JoinHandle<()>>,
}

impl MiningServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// accepting connections against `service`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<MiningService>,
        config: TransportConfig,
    ) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            service,
            config,
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            connections: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
            inflight: Mutex::new(HashMap::new()),
            threads: Mutex::new(Vec::new()),
        });
        let accept_shared = shared.clone();
        let accept = std::thread::Builder::new()
            .name("mine-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn accept thread");
        Ok(Self {
            local_addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live connection count.
    pub fn connection_count(&self) -> usize {
        self.shared
            .connections
            .lock()
            .expect("connections lock")
            .len()
    }

    /// Gracefully drains, then shuts down. Idempotent; drop runs it with a
    /// zero deadline (the old immediate-shutdown behavior).
    ///
    /// The drain lifecycle:
    ///
    /// 1. Stop accepting new connections, and flag new `Request`s on live
    ///    connections for rejection with [`WireRejection::ShuttingDown`].
    /// 2. Broadcast a typed [`Frame::Draining`] (carrying the deadline) on
    ///    every live connection, serialized with that connection's response
    ///    stream, so clients learn *before* their next rejection.
    /// 3. Give in-flight requests until `deadline` to finish streaming.
    /// 4. Close every socket. Stragglers' readers unblock, and the existing
    ///    disconnect→cancel path fires their jobs' cancel tokens; the runs
    ///    wind down cooperatively (recorded cancelled, not failed) and any
    ///    parked duplicate waiters resolve.
    /// 5. Join every connection thread.
    ///
    /// Returns `true` if every in-flight request finished inside the
    /// deadline (nothing was cancelled).
    pub fn shutdown(&mut self, deadline: Duration) -> bool {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return true;
        }
        self.shared.draining.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection; it checks
        // the flag after every accept.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Announce the drain on every live connection's writer channel —
        // the frame lands between (never inside) response frames.
        let deadline_ms = u64::try_from(deadline.as_millis()).unwrap_or(u64::MAX);
        let draining = encode_frame(&Frame::Draining { deadline_ms });
        {
            let connections = self.shared.connections.lock().expect("connections lock");
            for entry in connections.values() {
                let _ = entry.frames.send(draining.clone());
            }
        }
        // Let in-flight work finish: the quota map empties as waiters settle.
        const POLL: Duration = Duration::from_millis(2);
        let start = Instant::now();
        let mut clean = true;
        loop {
            if self
                .shared
                .inflight
                .lock()
                .expect("inflight lock")
                .is_empty()
            {
                break;
            }
            if start.elapsed() >= deadline {
                clean = false;
                break;
            }
            std::thread::sleep(POLL.min(deadline.saturating_sub(start.elapsed())));
        }
        let streams: Vec<TcpStream> = {
            let connections = self.shared.connections.lock().expect("connections lock");
            connections
                .values()
                .filter_map(|entry| entry.stream.try_clone().ok())
                .collect()
        };
        for stream in streams {
            // Read half only: blocked readers unblock (and the straggler
            // path fires disconnect→cancel), while each connection's
            // teardown still drains its writer channel — queued `Done`
            // frames flush to the client instead of being cut mid-send.
            let _ = stream.shutdown(Shutdown::Read);
        }
        let threads: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.shared.threads.lock().expect("threads lock"));
        for thread in threads {
            let _ = thread.join();
        }
        clean
    }
}

impl Drop for MiningServer {
    fn drop(&mut self) {
        self.shutdown(Duration::ZERO);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            continue;
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let at_cap = {
            let connections = shared.connections.lock().expect("connections lock");
            connections.len() >= shared.config.max_connections
        };
        if at_cap {
            // Refuse with a typed Goodbye instead of a silent close.
            let goodbye = encode_frame(&Frame::Goodbye {
                rejection: Some(WireRejection::TooManyConnections {
                    limit: shared.config.max_connections as u64,
                }),
                message: "connection cap reached".into(),
            });
            let mut stream = stream;
            let _ = stream.write_all(&goodbye);
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        // Frames are small and latency-sensitive (an Accepted immediately
        // followed by streamed patterns); Nagle + delayed ACK would add
        // ~40ms stalls between them.
        let _ = stream.set_nodelay(true);
        // The idle reaper: a read that sits this long without a frame (or a
        // heartbeat) returns `TimedOut`, and the connection — presumed
        // half-open — is torn down, releasing its slot and quota.
        let _ = stream.set_read_timeout(shared.config.idle_timeout);
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        // The writer channel is created here (not in `serve_connection`) so
        // the registry entry carries the sender: a graceful drain can then
        // inject its `Draining` frame serialized with response traffic.
        let (frames_tx, frames_rx) = mpsc::channel::<Vec<u8>>();
        if let Ok(clone) = stream.try_clone() {
            shared.connections.lock().expect("connections lock").insert(
                conn_id,
                ConnEntry {
                    stream: clone,
                    frames: frames_tx.clone(),
                },
            );
        }
        let conn_shared = shared.clone();
        let thread = std::thread::Builder::new()
            .name(format!("mine-conn-{conn_id}"))
            .spawn(move || {
                serve_connection(&conn_shared, stream, frames_tx, frames_rx, conn_id);
                conn_shared
                    .connections
                    .lock()
                    .expect("connections lock")
                    .remove(&conn_id);
            })
            .expect("spawn connection thread");
        shared.threads.lock().expect("threads lock").push(thread);
    }
}

/// Sends encoded frames from a channel to the socket, serializing all
/// producers (reader thread, dispatcher observers, waiter threads) onto one
/// write stream. A write failure shuts the socket down so the reader
/// unblocks and tears the connection down.
fn writer_loop(mut stream: TcpStream, frames: &mpsc::Receiver<Vec<u8>>) {
    while let Ok(bytes) = frames.recv() {
        // Deterministic fault injection: a disruptive write fault behaves
        // exactly like the write failing — shut the socket so the reader
        // tears the connection down (and the client sees a severed stream).
        let injected = matches!(
            faultline::check(FaultSite::WireWrite),
            Some(FaultKind::Error | FaultKind::Disconnect)
        );
        if injected
            || stream
                .write_all(&bytes)
                .and_then(|()| stream.flush())
                .is_err()
        {
            let _ = stream.shutdown(Shutdown::Both);
            // Keep draining so queued senders' messages are dropped cheaply
            // until the channel closes with the connection.
            while frames.recv().is_ok() {}
            return;
        }
    }
}

/// State of one admitted request: the job handle, kept so `Cancel` frames
/// and disconnect→cancel can fire its token.
struct LiveRequest {
    handle: JobHandle,
}

fn fnv_of(bytes: &[u8]) -> u64 {
    let mut hasher = StableHasher::new();
    hasher.write_bytes(bytes);
    hasher.finish()
}

fn map_service_error(error: &ServiceError) -> WireRejection {
    match error {
        ServiceError::UnknownGraph(name) => WireRejection::UnknownGraph(name.clone()),
        ServiceError::QueueFull { depth, limit } => WireRejection::QueueFull {
            depth: *depth as u64,
            limit: *limit as u64,
        },
        ServiceError::ShuttingDown => WireRejection::ShuttingDown,
        // InvalidRequest, and the submission-impossible job/snapshot errors.
        other => WireRejection::InvalidRequest(other.to_string()),
    }
}

fn serve_connection(
    shared: &Arc<ServerShared>,
    stream: TcpStream,
    frames_tx: mpsc::Sender<Vec<u8>>,
    frames_rx: mpsc::Receiver<Vec<u8>>,
    conn_id: u64,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = std::thread::Builder::new()
        .name(format!("mine-conn-{conn_id}-writer"))
        .spawn(move || writer_loop(write_half, &frames_rx))
        .expect("spawn writer thread");

    let mut reader = stream;
    let live: Arc<Mutex<HashMap<u64, LiveRequest>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut waiters: Vec<JoinHandle<()>> = Vec::new();
    let mut client: Option<String> = None;

    let send = |frame: &Frame| {
        let _ = frames_tx.send(encode_frame(frame));
    };

    loop {
        let frame = match read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(TransportError::Closed) => break,
            Err(TransportError::Io(_)) => break,
            Err(TransportError::TimedOut) => {
                // The idle reaper: no frame (not even a heartbeat) inside
                // the timeout window — presume the peer is half-open and
                // reclaim the slot. Alive-but-silent peers get a typed
                // explanation first.
                send(&Frame::Goodbye {
                    rejection: None,
                    message: "idle timeout: no frame within the announced window".into(),
                });
                break;
            }
            Err(error) => {
                // A malformed frame poisons only this connection: name the
                // problem, close, and keep serving everyone else.
                send(&Frame::Goodbye {
                    rejection: None,
                    message: format!("protocol error: {error}"),
                });
                break;
            }
        };
        match frame {
            Frame::Hello { client: name } if client.is_none() => {
                if name.is_empty() || name.len() > MAX_CLIENT_NAME {
                    send(&Frame::Goodbye {
                        rejection: None,
                        message: format!("client name must be 1..={MAX_CLIENT_NAME} bytes"),
                    });
                    break;
                }
                client = Some(name);
                send(&Frame::HelloAck {
                    max_inflight: shared.config.max_inflight_per_client as u64,
                    idle_timeout_ms: shared
                        .config
                        .idle_timeout
                        .map_or(0, |t| u64::try_from(t.as_millis()).unwrap_or(u64::MAX)),
                });
            }
            Frame::Hello { .. } => {
                send(&Frame::Goodbye {
                    rejection: None,
                    message: "duplicate Hello".into(),
                });
                break;
            }
            _ if client.is_none() => {
                send(&Frame::Goodbye {
                    rejection: None,
                    message: "first frame must be Hello".into(),
                });
                break;
            }
            Frame::Heartbeat => {
                // Keep-alive: the read itself already reset the idle timer;
                // nothing to answer.
            }
            Frame::Request { id, .. } if shared.draining.load(Ordering::Acquire) => {
                // Mid-drain: in-flight work keeps streaming, new work is
                // turned away with the same typed rejection the scheduler
                // would give after shutdown.
                send(&Frame::Rejected {
                    id,
                    rejection: WireRejection::ShuttingDown,
                });
            }
            Frame::Request {
                id,
                graph,
                request,
                trace,
            } => {
                let client = client.clone().expect("handshake done");
                if let Some(waiter) = handle_request(
                    shared, &frames_tx, &live, &client, id, &graph, &request, trace,
                ) {
                    waiters.push(waiter);
                }
            }
            Frame::Cancel { id } => {
                // Unknown ids are ignored: cancelling a request that just
                // settled is a benign race, not a protocol violation.
                if let Some(request) = live.lock().expect("live lock").get(&id) {
                    request.handle.cancel();
                }
            }
            Frame::StatsRequest { id } => {
                send(&Frame::Stats {
                    id,
                    metrics: shared.service.metrics(),
                });
            }
            Frame::MetricsRequest { id } => {
                // Both registries: the service's own cells (jobs, cache,
                // per-client) and the process-global ones (graph I/O, oracle).
                let text = telemetry::prometheus_text(&[
                    shared.service.registry().snapshot(),
                    telemetry::global().snapshot(),
                ]);
                send(&Frame::Metrics { id, text });
            }
            Frame::TraceRequest { id } => {
                // Empty `[]` trace when the server runs disarmed — still
                // valid trace-event JSON, so clients need no special case.
                let json = telemetry::chrome_trace_json(&telemetry::capture_snapshot());
                send(&Frame::Trace { id, json });
            }
            // Server-to-client frames arriving at the server are a protocol
            // violation.
            Frame::HelloAck { .. }
            | Frame::Accepted { .. }
            | Frame::Rejected { .. }
            | Frame::Pattern { .. }
            | Frame::Done { .. }
            | Frame::Failed { .. }
            | Frame::Stats { .. }
            | Frame::Metrics { .. }
            | Frame::Trace { .. }
            | Frame::Draining { .. } => {
                send(&Frame::Goodbye {
                    rejection: None,
                    message: "received a server-side frame".into(),
                });
                break;
            }
            Frame::Goodbye { .. } => break,
        }
    }

    // Disconnect → cancel: fire the token of every job this connection
    // still has in flight. The jobs wind down cooperatively and record
    // `cancelled` (not `failed`); their waiter threads then settle.
    for request in live.lock().expect("live lock").values() {
        request.handle.cancel();
    }
    for waiter in waiters {
        let _ = waiter.join();
    }
    // Deregister *before* joining the writer: the registry entry holds a
    // sender clone, and the writer only exits once every sender is gone —
    // leaving the entry in place until after the join would deadlock.
    shared
        .connections
        .lock()
        .expect("connections lock")
        .remove(&conn_id);
    drop(frames_tx);
    let _ = writer.join();
    let _ = reader.shutdown(Shutdown::Both);
}

/// Admits one `Request` frame: decode, quota, scheduler submission, and —
/// if accepted — the streaming observer and completion waiter. Returns the
/// waiter thread handle on acceptance.
#[allow(clippy::too_many_arguments)]
fn handle_request(
    shared: &Arc<ServerShared>,
    frames_tx: &mpsc::Sender<Vec<u8>>,
    live: &Arc<Mutex<HashMap<u64, LiveRequest>>>,
    client: &str,
    id: u64,
    graph: &str,
    request_bytes: &[u8],
    trace: u64,
) -> Option<JoinHandle<()>> {
    let send = |frame: &Frame| {
        let _ = frames_tx.send(encode_frame(frame));
    };
    let reject = |rejection: WireRejection| {
        send(&Frame::Rejected { id, rejection });
    };

    let request: MineRequest = match spidermine_engine::wire::decode_request(request_bytes) {
        Ok(request) => request,
        Err(error) => {
            // The frame itself was intact (checksum passed); the embedded
            // request bytes were not. That's a per-request rejection, not a
            // connection error.
            shared.service.clients().record_rejected(client);
            reject(WireRejection::InvalidRequest(error.to_string()));
            return None;
        }
    };

    // Per-client quota, checked-and-claimed atomically.
    let quota = {
        let mut inflight = shared.inflight.lock().expect("inflight lock");
        let count = inflight.entry(client.to_owned()).or_insert(0);
        if *count >= shared.config.max_inflight_per_client {
            let rejection = WireRejection::QuotaExceeded {
                in_flight: *count as u64,
                limit: shared.config.max_inflight_per_client as u64,
            };
            drop(inflight);
            shared.service.clients().record_rejected(client);
            reject(rejection);
            return None;
        }
        *count += 1;
        QuotaSlot {
            shared: shared.clone(),
            client: client.to_owned(),
        }
    };

    // The streaming observer: encode and enqueue each accepted pattern the
    // moment the engine (or a cache replay) delivers it, and log its
    // fingerprint so the Done frame can map outcome order onto the stream.
    let stream_log: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let observer = {
        let frames_tx = frames_tx.clone();
        let stream_log = stream_log.clone();
        let service = shared.service.clone();
        let client = client.to_owned();
        move |pattern: &spidermine_engine::StreamedPattern| {
            let bytes = encode_pattern(pattern);
            let seq = {
                let mut log = stream_log.lock().expect("stream log lock");
                log.push((fnv_of(&bytes), bytes.len()));
                (log.len() - 1) as u64
            };
            service
                .clients()
                .record_streamed(&client, 1, bytes.len() as u64);
            let _ = frames_tx.send(encode_frame(&Frame::Pattern {
                id,
                seq,
                pattern: bytes,
            }));
        }
    };

    let options = SubmitOptions {
        observer: Some(Arc::new(observer)),
        client: Some(client.to_owned()),
        // Adopt the client-minted trace id so the server-side span tree of
        // this job lines up with the client's events; 0 means "untraced
        // client", and the scheduler mints its own id.
        trace: (trace != 0).then_some(trace),
        ..SubmitOptions::default()
    };
    let handle = match shared.service.submit_with_options(graph, request, options) {
        Ok(handle) => handle,
        Err(error) => {
            // The scheduler already recorded the per-client rejection.
            reject(map_service_error(&error));
            drop(quota);
            return None;
        }
    };

    live.lock().expect("live lock").insert(
        id,
        LiveRequest {
            handle: handle.clone(),
        },
    );
    send(&Frame::Accepted {
        id,
        job: handle.id(),
    });

    // Completion waiter: one small blocking thread per in-flight request
    // (bounded by the quota), so the reader thread never blocks on a job.
    let waiter_tx = frames_tx.clone();
    let waiter_live = live.clone();
    let waiter = std::thread::Builder::new()
        .name(format!("mine-wait-{id}"))
        .spawn(move || {
            let _quota = quota;
            let result = handle.wait();
            let frame = match result {
                Ok(outcome) => {
                    let log = stream_log.lock().expect("stream log lock");
                    let mut used = vec![false; log.len()];
                    let order = outcome
                        .patterns
                        .iter()
                        .map(|pattern| {
                            let bytes = encode_pattern(pattern);
                            let key = (fnv_of(&bytes), bytes.len());
                            // First-unused matching keeps duplicate patterns
                            // (same bytes streamed twice) unambiguous.
                            match log
                                .iter()
                                .enumerate()
                                .find(|(i, entry)| !used[*i] && **entry == key)
                            {
                                Some((i, _)) => {
                                    used[i] = true;
                                    PatternRef::Streamed(i as u64)
                                }
                                None => PatternRef::Inline(bytes),
                            }
                        })
                        .collect();
                    Frame::Done {
                        id,
                        from_cache: handle.metrics().is_some_and(|m| m.from_cache),
                        meta: encode_outcome_meta(&outcome),
                        order,
                        trace: handle.trace(),
                    }
                }
                Err(error) => Frame::Failed {
                    id,
                    message: error.to_string(),
                },
            };
            let _ = waiter_tx.send(encode_frame(&frame));
            waiter_live.lock().expect("live lock").remove(&id);
        })
        .expect("spawn waiter thread");
    Some(waiter)
}
