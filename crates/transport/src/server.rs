//! The TCP server: accept loop, per-connection reader/writer threads, edge
//! admission, and incremental pattern streaming.
//!
//! Admission happens in layers, each with a typed answer, so overload sheds
//! work at the cheapest possible point:
//!
//! 1. **Connection cap** — an accept beyond
//!    [`TransportConfig::max_connections`] is answered with a `Goodbye`
//!    carrying [`WireRejection::TooManyConnections`] and closed.
//! 2. **Per-client quota** — a `Request` from a client already at
//!    [`TransportConfig::max_inflight_per_client`] in-flight jobs is
//!    answered with a `Rejected` frame ([`WireRejection::QuotaExceeded`]);
//!    the connection stays open. Quotas are keyed by the client *name* from
//!    the handshake, so a tenant opening many sockets shares one budget.
//! 3. **Scheduler admission** — everything the in-process scheduler rejects
//!    (unknown graph, full queue, invalid request, shutdown) maps onto the
//!    equivalent [`WireRejection`].
//!
//! Admitted jobs stream: a [`PatternObserver`](spidermine_service::PatternObserver)
//! installed at submission
//! encodes each accepted pattern and queues a `Pattern` frame the moment the
//! engine emits it — a client starts consuming results while the run is
//! still mining, and duplicate requests served by the single-flight cache
//! replay the cached patterns through the same path. A client disconnect
//! (clean or mid-frame) fires the cancel token of every job the connection
//! still has in flight, so abandoned work stops burning dispatcher time.

use crate::error::{TransportError, WireRejection};
use crate::frame::{encode_frame, read_frame, Frame, PatternRef};
use spidermine_engine::wire::{encode_outcome_meta, encode_pattern};
use spidermine_engine::MineRequest;
use spidermine_graph::signature::StableHasher;
use spidermine_service::{JobHandle, MiningService, ServiceError, SubmitOptions};
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Maximum accepted length of the client name in a `Hello`.
const MAX_CLIENT_NAME: usize = 256;

/// Tunables of the network edge.
#[derive(Clone, Debug)]
pub struct TransportConfig {
    /// Concurrent connections accepted; excess connections get a `Goodbye`
    /// with [`WireRejection::TooManyConnections`].
    pub max_connections: usize,
    /// In-flight requests one client name may hold across all its
    /// connections; excess requests get [`WireRejection::QuotaExceeded`].
    pub max_inflight_per_client: usize,
}

impl Default for TransportConfig {
    fn default() -> Self {
        Self {
            max_connections: 256,
            max_inflight_per_client: 8,
        }
    }
}

struct ServerShared {
    service: Arc<MiningService>,
    config: TransportConfig,
    shutdown: AtomicBool,
    /// Live connections, by id — stream clones kept so `shutdown` can
    /// unblock every reader.
    connections: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
    /// In-flight request count per client name (across connections).
    inflight: Mutex<HashMap<String, usize>>,
    /// Joinable per-connection threads. Entries accumulate until shutdown;
    /// at this server's scale (hundreds of connections) that is cheap, and
    /// joining them makes shutdown deterministic.
    threads: Mutex<Vec<JoinHandle<()>>>,
}

/// Holds one slot of a client's in-flight quota; released on drop (after
/// the job settles, or immediately if submission is rejected).
struct QuotaSlot {
    shared: Arc<ServerShared>,
    client: String,
}

impl Drop for QuotaSlot {
    fn drop(&mut self) {
        let mut inflight = self.shared.inflight.lock().expect("inflight lock");
        if let Some(count) = inflight.get_mut(&self.client) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                inflight.remove(&self.client);
            }
        }
    }
}

/// The listening server. Binding starts the accept loop;
/// [`shutdown`](MiningServer::shutdown) — or drop — closes every connection and joins
/// every thread. The [`MiningService`] is shared, not owned: the caller can
/// keep submitting in-process work beside the network edge.
pub struct MiningServer {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Option<JoinHandle<()>>,
}

impl MiningServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// accepting connections against `service`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<MiningService>,
        config: TransportConfig,
    ) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            service,
            config,
            shutdown: AtomicBool::new(false),
            connections: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
            inflight: Mutex::new(HashMap::new()),
            threads: Mutex::new(Vec::new()),
        });
        let accept_shared = shared.clone();
        let accept = std::thread::Builder::new()
            .name("mine-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn accept thread");
        Ok(Self {
            local_addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live connection count.
    pub fn connection_count(&self) -> usize {
        self.shared
            .connections
            .lock()
            .expect("connections lock")
            .len()
    }

    /// Stops accepting, closes every live connection (firing the cancel
    /// token of each connection's in-flight jobs), and joins every thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the blocking accept with a throwaway connection; it checks
        // the flag after every accept.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let streams: Vec<TcpStream> = {
            let connections = self.shared.connections.lock().expect("connections lock");
            connections
                .values()
                .filter_map(|s| s.try_clone().ok())
                .collect()
        };
        for stream in streams {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let threads: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.shared.threads.lock().expect("threads lock"));
        for thread in threads {
            let _ = thread.join();
        }
    }
}

impl Drop for MiningServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            continue;
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let at_cap = {
            let connections = shared.connections.lock().expect("connections lock");
            connections.len() >= shared.config.max_connections
        };
        if at_cap {
            // Refuse with a typed Goodbye instead of a silent close.
            let goodbye = encode_frame(&Frame::Goodbye {
                rejection: Some(WireRejection::TooManyConnections {
                    limit: shared.config.max_connections as u64,
                }),
                message: "connection cap reached".into(),
            });
            let mut stream = stream;
            let _ = stream.write_all(&goodbye);
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        // Frames are small and latency-sensitive (an Accepted immediately
        // followed by streamed patterns); Nagle + delayed ACK would add
        // ~40ms stalls between them.
        let _ = stream.set_nodelay(true);
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared
                .connections
                .lock()
                .expect("connections lock")
                .insert(conn_id, clone);
        }
        let conn_shared = shared.clone();
        let thread = std::thread::Builder::new()
            .name(format!("mine-conn-{conn_id}"))
            .spawn(move || {
                serve_connection(&conn_shared, stream, conn_id);
                conn_shared
                    .connections
                    .lock()
                    .expect("connections lock")
                    .remove(&conn_id);
            })
            .expect("spawn connection thread");
        shared.threads.lock().expect("threads lock").push(thread);
    }
}

/// Sends encoded frames from a channel to the socket, serializing all
/// producers (reader thread, dispatcher observers, waiter threads) onto one
/// write stream. A write failure shuts the socket down so the reader
/// unblocks and tears the connection down.
fn writer_loop(mut stream: TcpStream, frames: &mpsc::Receiver<Vec<u8>>) {
    while let Ok(bytes) = frames.recv() {
        if stream
            .write_all(&bytes)
            .and_then(|()| stream.flush())
            .is_err()
        {
            let _ = stream.shutdown(Shutdown::Both);
            // Keep draining so queued senders' messages are dropped cheaply
            // until the channel closes with the connection.
            while frames.recv().is_ok() {}
            return;
        }
    }
}

/// State of one admitted request: the job handle, kept so `Cancel` frames
/// and disconnect→cancel can fire its token.
struct LiveRequest {
    handle: JobHandle,
}

fn fnv_of(bytes: &[u8]) -> u64 {
    let mut hasher = StableHasher::new();
    hasher.write_bytes(bytes);
    hasher.finish()
}

fn map_service_error(error: &ServiceError) -> WireRejection {
    match error {
        ServiceError::UnknownGraph(name) => WireRejection::UnknownGraph(name.clone()),
        ServiceError::QueueFull { depth, limit } => WireRejection::QueueFull {
            depth: *depth as u64,
            limit: *limit as u64,
        },
        ServiceError::ShuttingDown => WireRejection::ShuttingDown,
        // InvalidRequest, and the submission-impossible job/snapshot errors.
        other => WireRejection::InvalidRequest(other.to_string()),
    }
}

fn serve_connection(shared: &Arc<ServerShared>, stream: TcpStream, conn_id: u64) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (frames_tx, frames_rx) = mpsc::channel::<Vec<u8>>();
    let writer = std::thread::Builder::new()
        .name(format!("mine-conn-{conn_id}-writer"))
        .spawn(move || writer_loop(write_half, &frames_rx))
        .expect("spawn writer thread");

    let mut reader = stream;
    let live: Arc<Mutex<HashMap<u64, LiveRequest>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut waiters: Vec<JoinHandle<()>> = Vec::new();
    let mut client: Option<String> = None;

    let send = |frame: &Frame| {
        let _ = frames_tx.send(encode_frame(frame));
    };

    loop {
        let frame = match read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(TransportError::Closed) => break,
            Err(TransportError::Io(_)) => break,
            Err(error) => {
                // A malformed frame poisons only this connection: name the
                // problem, close, and keep serving everyone else.
                send(&Frame::Goodbye {
                    rejection: None,
                    message: format!("protocol error: {error}"),
                });
                break;
            }
        };
        match frame {
            Frame::Hello { client: name } if client.is_none() => {
                if name.is_empty() || name.len() > MAX_CLIENT_NAME {
                    send(&Frame::Goodbye {
                        rejection: None,
                        message: format!("client name must be 1..={MAX_CLIENT_NAME} bytes"),
                    });
                    break;
                }
                client = Some(name);
                send(&Frame::HelloAck {
                    max_inflight: shared.config.max_inflight_per_client as u64,
                });
            }
            Frame::Hello { .. } => {
                send(&Frame::Goodbye {
                    rejection: None,
                    message: "duplicate Hello".into(),
                });
                break;
            }
            _ if client.is_none() => {
                send(&Frame::Goodbye {
                    rejection: None,
                    message: "first frame must be Hello".into(),
                });
                break;
            }
            Frame::Request { id, graph, request } => {
                let client = client.clone().expect("handshake done");
                if let Some(waiter) =
                    handle_request(shared, &frames_tx, &live, &client, id, &graph, &request)
                {
                    waiters.push(waiter);
                }
            }
            Frame::Cancel { id } => {
                // Unknown ids are ignored: cancelling a request that just
                // settled is a benign race, not a protocol violation.
                if let Some(request) = live.lock().expect("live lock").get(&id) {
                    request.handle.cancel();
                }
            }
            Frame::StatsRequest { id } => {
                send(&Frame::Stats {
                    id,
                    metrics: shared.service.metrics(),
                });
            }
            // Server-to-client frames arriving at the server are a protocol
            // violation.
            Frame::HelloAck { .. }
            | Frame::Accepted { .. }
            | Frame::Rejected { .. }
            | Frame::Pattern { .. }
            | Frame::Done { .. }
            | Frame::Failed { .. }
            | Frame::Stats { .. } => {
                send(&Frame::Goodbye {
                    rejection: None,
                    message: "received a server-side frame".into(),
                });
                break;
            }
            Frame::Goodbye { .. } => break,
        }
    }

    // Disconnect → cancel: fire the token of every job this connection
    // still has in flight. The jobs wind down cooperatively and record
    // `cancelled` (not `failed`); their waiter threads then settle.
    for request in live.lock().expect("live lock").values() {
        request.handle.cancel();
    }
    for waiter in waiters {
        let _ = waiter.join();
    }
    drop(frames_tx);
    let _ = writer.join();
    let _ = reader.shutdown(Shutdown::Both);
}

/// Admits one `Request` frame: decode, quota, scheduler submission, and —
/// if accepted — the streaming observer and completion waiter. Returns the
/// waiter thread handle on acceptance.
#[allow(clippy::too_many_arguments)]
fn handle_request(
    shared: &Arc<ServerShared>,
    frames_tx: &mpsc::Sender<Vec<u8>>,
    live: &Arc<Mutex<HashMap<u64, LiveRequest>>>,
    client: &str,
    id: u64,
    graph: &str,
    request_bytes: &[u8],
) -> Option<JoinHandle<()>> {
    let send = |frame: &Frame| {
        let _ = frames_tx.send(encode_frame(frame));
    };
    let reject = |rejection: WireRejection| {
        send(&Frame::Rejected { id, rejection });
    };

    let request: MineRequest = match spidermine_engine::wire::decode_request(request_bytes) {
        Ok(request) => request,
        Err(error) => {
            // The frame itself was intact (checksum passed); the embedded
            // request bytes were not. That's a per-request rejection, not a
            // connection error.
            shared.service.clients().record_rejected(client);
            reject(WireRejection::InvalidRequest(error.to_string()));
            return None;
        }
    };

    // Per-client quota, checked-and-claimed atomically.
    let quota = {
        let mut inflight = shared.inflight.lock().expect("inflight lock");
        let count = inflight.entry(client.to_owned()).or_insert(0);
        if *count >= shared.config.max_inflight_per_client {
            let rejection = WireRejection::QuotaExceeded {
                in_flight: *count as u64,
                limit: shared.config.max_inflight_per_client as u64,
            };
            drop(inflight);
            shared.service.clients().record_rejected(client);
            reject(rejection);
            return None;
        }
        *count += 1;
        QuotaSlot {
            shared: shared.clone(),
            client: client.to_owned(),
        }
    };

    // The streaming observer: encode and enqueue each accepted pattern the
    // moment the engine (or a cache replay) delivers it, and log its
    // fingerprint so the Done frame can map outcome order onto the stream.
    let stream_log: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let observer = {
        let frames_tx = frames_tx.clone();
        let stream_log = stream_log.clone();
        let service = shared.service.clone();
        let client = client.to_owned();
        move |pattern: &spidermine_engine::StreamedPattern| {
            let bytes = encode_pattern(pattern);
            let seq = {
                let mut log = stream_log.lock().expect("stream log lock");
                log.push((fnv_of(&bytes), bytes.len()));
                (log.len() - 1) as u64
            };
            service
                .clients()
                .record_streamed(&client, 1, bytes.len() as u64);
            let _ = frames_tx.send(encode_frame(&Frame::Pattern {
                id,
                seq,
                pattern: bytes,
            }));
        }
    };

    let options = SubmitOptions {
        observer: Some(Arc::new(observer)),
        client: Some(client.to_owned()),
        ..SubmitOptions::default()
    };
    let handle = match shared.service.submit_with_options(graph, request, options) {
        Ok(handle) => handle,
        Err(error) => {
            // The scheduler already recorded the per-client rejection.
            reject(map_service_error(&error));
            drop(quota);
            return None;
        }
    };

    live.lock().expect("live lock").insert(
        id,
        LiveRequest {
            handle: handle.clone(),
        },
    );
    send(&Frame::Accepted {
        id,
        job: handle.id(),
    });

    // Completion waiter: one small blocking thread per in-flight request
    // (bounded by the quota), so the reader thread never blocks on a job.
    let waiter_tx = frames_tx.clone();
    let waiter_live = live.clone();
    let waiter = std::thread::Builder::new()
        .name(format!("mine-wait-{id}"))
        .spawn(move || {
            let _quota = quota;
            let result = handle.wait();
            let frame = match result {
                Ok(outcome) => {
                    let log = stream_log.lock().expect("stream log lock");
                    let mut used = vec![false; log.len()];
                    let order = outcome
                        .patterns
                        .iter()
                        .map(|pattern| {
                            let bytes = encode_pattern(pattern);
                            let key = (fnv_of(&bytes), bytes.len());
                            // First-unused matching keeps duplicate patterns
                            // (same bytes streamed twice) unambiguous.
                            match log
                                .iter()
                                .enumerate()
                                .find(|(i, entry)| !used[*i] && **entry == key)
                            {
                                Some((i, _)) => {
                                    used[i] = true;
                                    PatternRef::Streamed(i as u64)
                                }
                                None => PatternRef::Inline(bytes),
                            }
                        })
                        .collect();
                    Frame::Done {
                        id,
                        from_cache: handle.metrics().is_some_and(|m| m.from_cache),
                        meta: encode_outcome_meta(&outcome),
                        order,
                    }
                }
                Err(error) => Frame::Failed {
                    id,
                    message: error.to_string(),
                },
            };
            let _ = waiter_tx.send(encode_frame(&frame));
            waiter_live.lock().expect("live lock").remove(&id);
        })
        .expect("spawn waiter thread");
    Some(waiter)
}
