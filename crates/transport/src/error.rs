//! Typed errors of the wire protocol.
//!
//! The transport's failure story mirrors the `SPDRSNAP` snapshot format's: a
//! hostile, truncated, or bit-flipped byte stream yields a typed
//! [`TransportError`] — never a panic, never a silent misread. Admission
//! decisions travel as data, not as connection state: a rejected request is
//! answered with a [`WireRejection`] frame on a socket that stays open, so a
//! client over quota can keep using its other in-flight streams.

use spidermine_engine::wire::WireError;
use std::fmt;
use std::io;

/// Why the server refused a request (or, for
/// [`WireRejection::TooManyConnections`], a whole connection). Carried in a
/// `Rejected` frame; the socket stays usable afterwards except for the
/// connection-cap case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireRejection {
    /// The scheduler's admission queue is at its depth limit.
    QueueFull {
        /// Jobs currently waiting (queued + parked).
        depth: u64,
        /// The configured limit.
        limit: u64,
    },
    /// This client already has its quota of in-flight requests.
    QuotaExceeded {
        /// The client's current in-flight count.
        in_flight: u64,
        /// The configured per-client limit.
        limit: u64,
    },
    /// The named graph is not in the server's catalog.
    UnknownGraph(String),
    /// The request failed decoding or validation; the message names the
    /// problem (for validation failures, the offending field).
    InvalidRequest(String),
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
    /// The server is at its global connection cap. Sent in the `Goodbye`
    /// that closes the excess connection.
    TooManyConnections {
        /// The configured cap.
        limit: u64,
    },
}

impl fmt::Display for WireRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireRejection::QueueFull { depth, limit } => {
                write!(f, "queue full ({depth} of {limit} slots used)")
            }
            WireRejection::QuotaExceeded { in_flight, limit } => {
                write!(
                    f,
                    "per-client quota exceeded ({in_flight} of {limit} in flight)"
                )
            }
            WireRejection::UnknownGraph(name) => {
                write!(f, "no graph named `{name}` in the catalog")
            }
            WireRejection::InvalidRequest(message) => write!(f, "invalid request: {message}"),
            WireRejection::ShuttingDown => write!(f, "server is shutting down"),
            WireRejection::TooManyConnections { limit } => {
                write!(f, "server is at its connection cap of {limit}")
            }
        }
    }
}

/// Everything that can go wrong on the wire. Frame-level corruption
/// (`BadMagic` … `ChecksumMismatch`) is distinguished from payload-level
/// corruption (`Corrupt`), request rejection (`Rejected`), and remote job
/// failure (`Job`), because callers react differently: a corrupt *frame*
/// poisons the connection, a rejected *request* does not.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportError {
    /// An OS-level socket error (connect refused, reset, …).
    Io(String),
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// A read deadline (from `set_read_timeout`) expired with no frame. The
    /// server's idle reaper uses this to tell "peer half-open" from an
    /// OS-level socket error.
    TimedOut,
    /// A frame header's magic was not `SPWF`.
    BadMagic([u8; 4]),
    /// A frame header declared a protocol version this build cannot speak.
    UnsupportedVersion(u16),
    /// A frame header declared an unknown frame type.
    UnknownFrameType(u16),
    /// A frame header declared a payload beyond the size cap — rejected
    /// before allocating.
    Oversized {
        /// Bytes the header declared.
        declared: usize,
        /// The cap.
        limit: usize,
    },
    /// The payload did not hash to the header's checksum.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the received payload.
        computed: u64,
    },
    /// The stream ended mid-frame (mid-header or mid-payload).
    Truncated {
        /// Bytes still owed.
        expected: usize,
        /// Bytes received.
        actual: usize,
    },
    /// A structurally valid frame carried an undecodable payload.
    Corrupt(String),
    /// The server refused the request (admission control).
    Rejected(WireRejection),
    /// The remote job ran and failed (engine error or panic, server-side).
    Job(String),
    /// The peer violated the frame sequence (e.g. a response for an unknown
    /// request id, or a data frame before the handshake).
    Protocol(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io(message) => write!(f, "socket error: {message}"),
            TransportError::Closed => write!(f, "connection closed by peer"),
            TransportError::TimedOut => write!(f, "read timed out waiting for a frame"),
            TransportError::BadMagic(bytes) => {
                write!(f, "bad frame magic {bytes:02x?} (expected `SPWF`)")
            }
            TransportError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v}")
            }
            TransportError::UnknownFrameType(t) => write!(f, "unknown frame type {t}"),
            TransportError::Oversized { declared, limit } => {
                write!(f, "declared payload of {declared} bytes exceeds the {limit}-byte cap")
            }
            TransportError::ChecksumMismatch { stored, computed } => write!(
                f,
                "payload checksum mismatch: header says {stored:#018x}, payload hashes to {computed:#018x}"
            ),
            TransportError::Truncated { expected, actual } => {
                write!(f, "stream truncated mid-frame: needed {expected} bytes, got {actual}")
            }
            TransportError::Corrupt(message) => write!(f, "corrupt payload: {message}"),
            TransportError::Rejected(rejection) => write!(f, "request rejected: {rejection}"),
            TransportError::Job(message) => write!(f, "remote job failed: {message}"),
            TransportError::Protocol(message) => write!(f, "protocol violation: {message}"),
        }
    }
}

impl TransportError {
    /// Whether reconnecting and resubmitting the same request can plausibly
    /// succeed.
    ///
    /// This is the classification [`ResilientClient`](crate::ResilientClient)
    /// consults. Connection-lifetime failures — socket errors, the peer
    /// vanishing, truncated or corrupted-in-transit frames, timeouts, and a
    /// momentarily full queue — are transient: a fresh connection gets a
    /// fresh stream, and the server's result cache makes the resubmission
    /// cheap. Load-shedding rejections (`QueueFull`, `TooManyConnections`,
    /// `QuotaExceeded`) are transient too: each clears on its own as jobs
    /// settle or peers disconnect. Protocol-level failures (bad magic,
    /// unsupported version, undecodable payloads) mean the peers disagree
    /// about the protocol itself; the remaining rejections and remote job
    /// failures are answers, not accidents — retrying only repeats them.
    pub fn is_transient(&self) -> bool {
        match self {
            TransportError::Io(_)
            | TransportError::Closed
            | TransportError::TimedOut
            | TransportError::Truncated { .. }
            | TransportError::ChecksumMismatch { .. } => true,
            TransportError::Rejected(rejection) => {
                matches!(
                    rejection,
                    WireRejection::QueueFull { .. }
                        | WireRejection::TooManyConnections { .. }
                        | WireRejection::QuotaExceeded { .. }
                )
            }
            TransportError::BadMagic(_)
            | TransportError::UnsupportedVersion(_)
            | TransportError::UnknownFrameType(_)
            | TransportError::Oversized { .. }
            | TransportError::Corrupt(_)
            | TransportError::Job(_)
            | TransportError::Protocol(_) => false,
        }
    }
}

impl std::error::Error for TransportError {}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> Self {
        TransportError::Io(e.to_string())
    }
}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Truncated { expected, actual } => {
                // Payload truncation inside a complete frame is corruption:
                // the frame arrived whole but its contents lie.
                TransportError::Corrupt(format!(
                    "payload truncated: needed {expected} bytes, {actual} remain"
                ))
            }
            WireError::Corrupt(message) => TransportError::Corrupt(message),
            WireError::UnsupportedVersion(v) => TransportError::UnsupportedVersion(v),
        }
    }
}
