//! The self-healing client: reconnect-and-resume on transient failures.
//!
//! [`ResilientClient`] wraps [`MiningClient`] with the retry loop a caller
//! would otherwise write by hand: when a submission or its result stream
//! dies of a *transient* failure ([`TransportError::is_transient`] — the
//! socket reset, the stream truncated mid-frame, the server drained this
//! connection), it reconnects under its [`RetryPolicy`] (exponential
//! backoff, jittered, capped) and resubmits the same request.
//!
//! Resubmission is safe — and cheap — because of how the service is built:
//! requests are keyed by their *canonical* form, so the resubmission maps to
//! the same result-cache entry the interrupted run was filling. If the first
//! attempt completed server-side before the stream died, the retry is served
//! from the cache, byte-identical under the engine's semantic encoding; if it
//! was still running, single-flight parks the retry on the in-progress run
//! rather than mining twice. The client never observes a half-resumed
//! stream: each attempt replays the full pattern sequence from its start.
//!
//! Non-transient failures — typed rejections (unknown graph, invalid
//! request, quota), remote job failures, protocol violations — surface
//! immediately: they are answers, and retrying an answer only repeats it.

use crate::client::{MiningClient, RemoteOutcome};
use crate::error::TransportError;
use spidermine_engine::MineRequest;
use spidermine_faultline::RetryPolicy;
use spidermine_graph::signature::StableHasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A client that survives connection loss: failures that a fresh connection
/// can plausibly fix trigger reconnect-and-resubmit under a [`RetryPolicy`];
/// everything else surfaces unchanged. `&self` throughout, so one instance
/// can be shared behind an `Arc`.
pub struct ResilientClient {
    addr: String,
    name: String,
    policy: RetryPolicy,
    /// The live connection, or `None` after a transient failure dropped it
    /// (the next call reconnects lazily).
    inner: Mutex<Option<MiningClient>>,
    /// Connections re-established after the initial one.
    reconnects: AtomicU64,
    /// Submissions retried after a transient failure.
    retries: AtomicU64,
}

impl std::fmt::Debug for ResilientClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientClient")
            .field("addr", &self.addr)
            .field("name", &self.name)
            .field("policy", &self.policy)
            .field("reconnects", &self.reconnects)
            .field("retries", &self.retries)
            .finish_non_exhaustive()
    }
}

impl ResilientClient {
    /// Connects (itself under `policy` — a server still starting up is a
    /// transient failure too) and returns the wrapper.
    pub fn connect(
        addr: &str,
        client_name: &str,
        policy: RetryPolicy,
    ) -> Result<Self, TransportError> {
        let (client, _) = MiningClient::connect_with_policy(addr, client_name, &policy)?;
        Ok(Self {
            addr: addr.to_owned(),
            name: client_name.to_owned(),
            policy,
            inner: Mutex::new(Some(client)),
            reconnects: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        })
    }

    /// How many times this client has had to re-establish its connection.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// How many submissions were retried after a transient failure.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// The live connection, reconnecting first if a previous failure
    /// dropped it. A connection the server is draining counts as dropped:
    /// it would only answer new work with `ShuttingDown`.
    fn client(&self) -> Result<MiningClient, TransportError> {
        let mut guard = self.inner.lock().expect("client lock");
        if let Some(client) = guard.as_ref() {
            if !client.is_draining() {
                return Ok(client.clone());
            }
            *guard = None;
        }
        let (client, _) = MiningClient::connect_with_policy(&self.addr, &self.name, &self.policy)?;
        self.reconnects.fetch_add(1, Ordering::Relaxed);
        *guard = Some(client.clone());
        Ok(client)
    }

    /// Fetches the server's telemetry registries as Prometheus text,
    /// reconnecting across transient failures like [`Self::mine`].
    pub fn metrics_text(&self) -> Result<String, TransportError> {
        self.with_retry(|client| client.metrics_text())
    }

    /// Fetches the server's captured span events as Chrome trace-event
    /// JSON, reconnecting across transient failures like [`Self::mine`].
    pub fn trace_json(&self) -> Result<String, TransportError> {
        self.with_retry(|client| client.trace_json())
    }

    /// Runs one round-trip `op` against the live connection, reconnecting
    /// and retrying under the policy when it fails transiently.
    fn with_retry<T>(
        &self,
        op: impl Fn(&MiningClient) -> Result<T, TransportError>,
    ) -> Result<T, TransportError> {
        let mut hasher = StableHasher::new();
        hasher.write_bytes(self.name.as_bytes());
        let seed = hasher.finish();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match self.client().and_then(|client| op(&client)) {
                Ok(value) => return Ok(value),
                Err(error) if error.is_transient() && self.policy.should_retry(attempts) => {
                    *self.inner.lock().expect("client lock") = None;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.policy.delay_for(attempts, seed));
                }
                Err(error) => return Err(error),
            }
        }
    }

    /// Submits `request` and blocks to the final outcome, reconnecting and
    /// resubmitting across transient failures. The returned outcome is
    /// byte-identical (under the engine's semantic encoding) to an
    /// uninterrupted run: retries are served from the server's result cache
    /// or parked on the original in-progress run, never mined divergently.
    ///
    /// An *unsolicited* cancellation — a `cancelled` outcome this client
    /// never asked for, because the server drained or wrote the job off
    /// with a connection it judged dead — is retried like a transient
    /// error. Only if the policy exhausts does the partial, cancelled
    /// outcome surface (`Ok`, with `outcome.cancelled` set).
    pub fn mine(
        &self,
        graph: &str,
        request: &MineRequest,
    ) -> Result<RemoteOutcome, TransportError> {
        let mut hasher = StableHasher::new();
        hasher.write_bytes(self.name.as_bytes());
        hasher.write_bytes(graph.as_bytes());
        let seed = hasher.finish();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let result = self
                .client()
                .and_then(|client| client.submit(graph, request))
                .and_then(|job| job.outcome());
            match result {
                // An unsolicited cancellation: this client never cancelled
                // (it does not even expose the job handle), so the run was
                // wound down server-side — a drain, or a connection the
                // server judged dead (its read failed) while the job sat
                // queued. Both are transient from here: resubmit. Cancelled
                // outcomes are never cached, so the retry mines fresh or is
                // served the original complete entry — never the partial.
                Ok(outcome) if outcome.outcome.cancelled && self.policy.should_retry(attempts) => {
                    *self.inner.lock().expect("client lock") = None;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.policy.delay_for(attempts, seed));
                }
                Ok(outcome) => return Ok(outcome),
                Err(error) if error.is_transient() && self.policy.should_retry(attempts) => {
                    // Drop the (likely dead) connection; the next iteration
                    // reconnects. The sleep is the same jittered backoff the
                    // scheduler uses, so a burst of broken streams does not
                    // become a thundering reconnect herd.
                    *self.inner.lock().expect("client lock") = None;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.policy.delay_for(attempts, seed));
                }
                Err(error) => return Err(error),
            }
        }
    }
}
