//! The blocking client: connect, submit, iterate streamed patterns, cancel.
//!
//! [`MiningClient`] mirrors the in-process `MiningService` surface over a
//! socket: `submit` returns a [`RemoteJob`] that plays the role of a
//! `JobHandle` — iterate it for patterns as the server streams them, then
//! call [`RemoteJob::outcome`] for the reconstructed [`MineOutcome`], which
//! is byte-identical (under the engine's semantic encoding) to what an
//! in-process run of the same request produces.
//!
//! One background reader thread demultiplexes incoming frames to
//! per-request channels by request id, so one connection carries any number
//! of concurrent requests (submitted from any number of threads — the
//! client is `Clone` and all methods take `&self`). Losing the connection
//! broadcasts the error to every pending request rather than hanging them.

use crate::error::TransportError;
use crate::frame::{encode_frame, read_frame, Frame, PatternRef};
use spidermine_engine::wire::{decode_outcome_meta, decode_pattern};
use spidermine_engine::{MineOutcome, MineRequest, StreamedPattern};
use spidermine_faultline::{self as faultline, FaultKind, FaultSite, RetryPolicy};
use spidermine_graph::signature::StableHasher;
use spidermine_service::ServiceMetrics;
use spidermine_telemetry as telemetry;
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, Weak};
use std::time::Duration;

/// One demultiplexed server frame, routed to the request that owns it.
enum Event {
    Accepted {
        job: u64,
    },
    Rejected(TransportError),
    Pattern {
        seq: u64,
        bytes: Vec<u8>,
    },
    Done {
        from_cache: bool,
        meta: Vec<u8>,
        order: Vec<PatternRef>,
        trace: u64,
    },
    Failed(String),
    Stats(Box<ServiceMetrics>),
    /// Prometheus text answer to a `MetricsRequest`.
    Metrics(String),
    /// Chrome trace-event JSON answer to a `TraceRequest`.
    Trace(String),
    /// The connection died; carries the reason. Broadcast to all pending.
    Lost(TransportError),
}

struct ClientInner {
    /// Kept for `shutdown` on drop (unblocks the reader thread).
    stream: TcpStream,
    /// All frame writes go through this clone, serialized by the lock so
    /// concurrent submitters never interleave partial frames.
    writer: Mutex<TcpStream>,
    pending: Mutex<HashMap<u64, mpsc::Sender<Event>>>,
    next_id: AtomicU64,
    /// Set once the connection is lost; later submissions fail fast.
    dead: Mutex<Option<TransportError>>,
    /// Set when the server announces a graceful drain: in-flight results
    /// keep streaming, but new submissions will be rejected.
    draining: AtomicBool,
    max_inflight: u64,
    /// The server's idle timeout from the handshake (0 = none); the
    /// heartbeat thread beats at a third of it.
    idle_timeout_ms: u64,
}

impl ClientInner {
    fn send_frame(&self, frame: &Frame) -> Result<(), TransportError> {
        if let Some(error) = self.dead.lock().expect("dead lock").clone() {
            return Err(error);
        }
        // Deterministic fault injection: an injected disconnect severs the
        // real socket (so the reader thread observes the loss exactly as it
        // would a peer reset), an injected error reports a failed write.
        match faultline::check(FaultSite::WireWrite) {
            Some(FaultKind::Error) => {
                return Err(TransportError::Io("injected transient write fault".into()))
            }
            Some(FaultKind::Disconnect) => {
                let _ = self.stream.shutdown(Shutdown::Both);
                return Err(TransportError::Closed);
            }
            _ => {}
        }
        let bytes = encode_frame(frame);
        let mut writer = self.writer.lock().expect("writer lock");
        writer.write_all(&bytes)?;
        writer.flush()?;
        Ok(())
    }

    /// Registers a fresh request id with its event channel.
    fn register(&self) -> (u64, mpsc::Receiver<Event>) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        self.pending.lock().expect("pending lock").insert(id, tx);
        (id, rx)
    }

    fn unregister(&self, id: u64) {
        self.pending.lock().expect("pending lock").remove(&id);
    }
}

impl Drop for ClientInner {
    fn drop(&mut self) {
        // Unblocks the reader thread; it observes Closed/Io and exits.
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// Routes incoming frames to pending requests until the connection dies,
/// then broadcasts the loss so nobody blocks forever.
///
/// Holds only a [`Weak`] reference: when the last user handle drops,
/// `ClientInner::drop` shuts the socket down, this loop's blocking read
/// fails, the upgrade fails, and the thread exits — instead of the reader
/// keeping the connection alive forever.
fn reader_loop(mut stream: TcpStream, inner: &Weak<ClientInner>) {
    let loss = loop {
        let frame = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(error) => break error,
        };
        let (id, event) = match frame {
            Frame::Heartbeat => continue,
            Frame::Draining { .. } => {
                // Not terminal: in-flight results keep streaming until the
                // server's deadline. Flag it so new submissions can avoid a
                // doomed round-trip (and resilient callers reconnect).
                let Some(inner) = inner.upgrade() else {
                    return;
                };
                inner.draining.store(true, Ordering::Release);
                continue;
            }
            Frame::Accepted { id, job } => (id, Event::Accepted { job }),
            Frame::Rejected { id, rejection } => {
                (id, Event::Rejected(TransportError::Rejected(rejection)))
            }
            Frame::Pattern { id, seq, pattern } => (
                id,
                Event::Pattern {
                    seq,
                    bytes: pattern,
                },
            ),
            Frame::Done {
                id,
                from_cache,
                meta,
                order,
                trace,
            } => (
                id,
                Event::Done {
                    from_cache,
                    meta,
                    order,
                    trace,
                },
            ),
            Frame::Failed { id, message } => (id, Event::Failed(message)),
            Frame::Stats { id, metrics } => (id, Event::Stats(Box::new(metrics))),
            Frame::Metrics { id, text } => (id, Event::Metrics(text)),
            Frame::Trace { id, json } => (id, Event::Trace(json)),
            Frame::Goodbye { rejection, message } => {
                break match rejection {
                    Some(rejection) => TransportError::Rejected(rejection),
                    None => TransportError::Protocol(format!("server said goodbye: {message}")),
                };
            }
            // Client-to-server frames arriving at the client are a protocol
            // violation severe enough to drop the connection.
            Frame::Hello { .. }
            | Frame::HelloAck { .. }
            | Frame::Request { .. }
            | Frame::Cancel { .. }
            | Frame::StatsRequest { .. }
            | Frame::MetricsRequest { .. }
            | Frame::TraceRequest { .. } => {
                break TransportError::Protocol("received a client-side frame".into());
            }
        };
        let Some(inner) = inner.upgrade() else {
            return;
        };
        let pending = inner.pending.lock().expect("pending lock");
        if let Some(tx) = pending.get(&id) {
            // A dropped RemoteJob leaves a dead receiver; ignore.
            let _ = tx.send(event);
        }
    };
    let Some(inner) = inner.upgrade() else {
        return;
    };
    *inner.dead.lock().expect("dead lock") = Some(loss.clone());
    let pending = inner.pending.lock().expect("pending lock");
    for tx in pending.values() {
        let _ = tx.send(Event::Lost(loss.clone()));
    }
}

/// A blocking, thread-safe (`Clone` + `&self`) client for one server
/// connection.
#[derive(Clone)]
pub struct MiningClient {
    inner: Arc<ClientInner>,
}

impl MiningClient {
    /// Connects, performs the `Hello`/`HelloAck` handshake as `client_name`
    /// (the identity the server keys quotas and per-client stats by), and
    /// starts the background reader.
    pub fn connect(addr: impl ToSocketAddrs, client_name: &str) -> Result<Self, TransportError> {
        let stream = TcpStream::connect(addr)?;
        // Small latency-sensitive frames: keep Nagle from batching them
        // against delayed ACKs.
        let _ = stream.set_nodelay(true);
        let mut handshake = stream.try_clone()?;
        handshake.write_all(&encode_frame(&Frame::Hello {
            client: client_name.to_owned(),
        }))?;
        handshake.flush()?;
        // Handshake happens synchronously, before the reader thread exists,
        // so a rejection (e.g. connection cap) surfaces from `connect`.
        let (max_inflight, idle_timeout_ms) = match read_frame(&mut handshake)? {
            Frame::HelloAck {
                max_inflight,
                idle_timeout_ms,
            } => (max_inflight, idle_timeout_ms),
            Frame::Goodbye {
                rejection: Some(rejection),
                ..
            } => return Err(TransportError::Rejected(rejection)),
            Frame::Goodbye { message, .. } => {
                return Err(TransportError::Protocol(format!(
                    "server refused handshake: {message}"
                )))
            }
            other => {
                return Err(TransportError::Protocol(format!(
                    "expected HelloAck, got {other:?}"
                )))
            }
        };
        let read_half = stream.try_clone()?;
        let inner = Arc::new(ClientInner {
            writer: Mutex::new(stream.try_clone()?),
            stream,
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            dead: Mutex::new(None),
            draining: AtomicBool::new(false),
            max_inflight,
            idle_timeout_ms,
        });
        let reader_inner = Arc::downgrade(&inner);
        std::thread::Builder::new()
            .name(format!("mine-client-{client_name}"))
            .spawn(move || reader_loop(read_half, &reader_inner))
            .expect("spawn client reader thread");
        if idle_timeout_ms > 0 {
            // Heartbeat at a third of the announced window: one lost beat
            // still leaves two chances before the server reaps us. The
            // thread holds only a Weak handle, so it dies with the client.
            let beat_inner = Arc::downgrade(&inner);
            let interval = Duration::from_millis((idle_timeout_ms / 3).max(1));
            std::thread::Builder::new()
                .name(format!("mine-heartbeat-{client_name}"))
                .spawn(move || loop {
                    std::thread::sleep(interval);
                    let Some(inner) = beat_inner.upgrade() else {
                        return;
                    };
                    if inner.send_frame(&Frame::Heartbeat).is_err() {
                        return;
                    }
                })
                .expect("spawn heartbeat thread");
        }
        Ok(Self { inner })
    }

    /// [`connect`](Self::connect) with retries: `attempts` tries with
    /// exponential backoff from `initial_delay` (jittered, capped — see
    /// [`RetryPolicy`]). Returns the last error if every attempt fails, or
    /// immediately on a non-transient refusal (e.g. the connection cap) —
    /// retrying an *answer* only repeats it.
    pub fn connect_with_backoff(
        addr: impl ToSocketAddrs + Clone,
        client_name: &str,
        attempts: usize,
        initial_delay: Duration,
    ) -> Result<Self, TransportError> {
        let policy = RetryPolicy {
            max_attempts: u32::try_from(attempts.max(1)).unwrap_or(u32::MAX),
            base_delay: initial_delay,
            ..RetryPolicy::default()
        };
        Self::connect_with_policy(addr, client_name, &policy).map(|(client, _)| client)
    }

    /// [`connect`](Self::connect) under an explicit [`RetryPolicy`]. On
    /// success also returns how many attempts it took (1 = first try), so
    /// callers can surface flakiness instead of silently absorbing it.
    /// Backoff delays are jittered (seeded by the client name, so a fleet
    /// of distinctly-named clients never reconnects in lockstep) and capped
    /// at the policy's `max_delay`.
    pub fn connect_with_policy(
        addr: impl ToSocketAddrs + Clone,
        client_name: &str,
        policy: &RetryPolicy,
    ) -> Result<(Self, u32), TransportError> {
        let mut hasher = StableHasher::new();
        hasher.write_bytes(client_name.as_bytes());
        let seed = hasher.finish();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match Self::connect(addr.clone(), client_name) {
                Ok(client) => return Ok((client, attempts)),
                Err(error) => {
                    if !error.is_transient() || !policy.should_retry(attempts) {
                        return Err(error);
                    }
                }
            }
            std::thread::sleep(policy.delay_for(attempts, seed));
        }
    }

    /// The per-client in-flight quota the server announced at handshake.
    pub fn max_inflight(&self) -> u64 {
        self.inner.max_inflight
    }

    /// The server's idle timeout from the handshake (`None` = the server
    /// never reaps idle connections). When set, this client heartbeats
    /// automatically at a third of the window.
    pub fn idle_timeout(&self) -> Option<Duration> {
        (self.inner.idle_timeout_ms > 0).then(|| Duration::from_millis(self.inner.idle_timeout_ms))
    }

    /// True once the server has announced a graceful drain on this
    /// connection: in-flight jobs keep streaming to completion, but new
    /// submissions will be rejected — reconnect elsewhere or bail out.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::Acquire)
    }

    /// Submits `request` against the server-side graph named `graph`.
    /// Blocks until the server accepts (returning the streaming
    /// [`RemoteJob`]) or rejects (returning
    /// [`TransportError::Rejected`] with the typed reason).
    pub fn submit(&self, graph: &str, request: &MineRequest) -> Result<RemoteJob, TransportError> {
        let (id, events) = self.inner.register();
        // Mint the telemetry trace id on the client and carry it in the
        // Request frame: the server adopts it for the job's spans, so both
        // ends of the wire log under one trace. The client-side `remote_job`
        // span brackets submit → settle.
        let trace = telemetry::next_trace_id();
        let span = telemetry::span_start("remote_job", trace, 0);
        let frame = Frame::Request {
            id,
            graph: graph.to_owned(),
            request: spidermine_engine::wire::encode_request(request),
            trace,
        };
        if let Err(error) = self.inner.send_frame(&frame) {
            telemetry::span_end("remote_job", trace, span);
            self.inner.unregister(id);
            return Err(error);
        }
        // The Accepted frame (sent by the connection's reader thread) and
        // the first streamed frames (sent by the dispatcher's observer —
        // immediately, for a cache hit) can interleave. Stash data frames
        // that outrun the acceptance; the job replays them first.
        let mut stash = VecDeque::new();
        loop {
            match events.recv() {
                Ok(Event::Accepted { job }) => {
                    telemetry::instant("remote_accepted", trace, job);
                    return Ok(RemoteJob {
                        client: self.inner.clone(),
                        id,
                        job,
                        trace,
                        span,
                        events,
                        stash,
                        streamed: Vec::new(),
                        delivered: 0,
                        done: None,
                        failed: None,
                    });
                }
                Ok(Event::Rejected(error)) | Ok(Event::Lost(error)) => {
                    telemetry::span_end("remote_job", trace, span);
                    self.inner.unregister(id);
                    return Err(error);
                }
                Ok(event @ (Event::Pattern { .. } | Event::Done { .. } | Event::Failed(_))) => {
                    stash.push_back(event);
                }
                Ok(Event::Stats(_) | Event::Metrics(_) | Event::Trace(_)) => {
                    telemetry::span_end("remote_job", trace, span);
                    self.inner.unregister(id);
                    return Err(TransportError::Protocol(
                        "expected Accepted or Rejected, got an answer frame".into(),
                    ));
                }
                Err(_) => {
                    telemetry::span_end("remote_job", trace, span);
                    self.inner.unregister(id);
                    return Err(TransportError::Closed);
                }
            }
        }
    }

    /// Fetches the server's [`ServiceMetrics`], including per-client
    /// accepted/rejected/streamed counters.
    pub fn stats(&self) -> Result<ServiceMetrics, TransportError> {
        let (id, events) = self.inner.register();
        let result = (|| {
            self.inner.send_frame(&Frame::StatsRequest { id })?;
            match events.recv() {
                Ok(Event::Stats(metrics)) => Ok(*metrics),
                Ok(Event::Lost(error)) => Err(error),
                Ok(_) => Err(TransportError::Protocol("expected a Stats response".into())),
                Err(_) => Err(TransportError::Closed),
            }
        })();
        self.inner.unregister(id);
        result
    }

    /// Fetches the server's telemetry registries as Prometheus text
    /// exposition: jobs, cache, per-client, latency histograms with
    /// p50/p95/p99 quantiles, graph I/O and oracle aggregates.
    pub fn metrics_text(&self) -> Result<String, TransportError> {
        let (id, events) = self.inner.register();
        let result = (|| {
            self.inner.send_frame(&Frame::MetricsRequest { id })?;
            match events.recv() {
                Ok(Event::Metrics(text)) => Ok(text),
                Ok(Event::Lost(error)) => Err(error),
                Ok(_) => Err(TransportError::Protocol(
                    "expected a Metrics response".into(),
                )),
                Err(_) => Err(TransportError::Closed),
            }
        })();
        self.inner.unregister(id);
        result
    }

    /// Fetches the server's captured span/instant events as Chrome
    /// trace-event JSON (load in `chrome://tracing` or Perfetto). Empty
    /// `{"traceEvents":[]}` unless the server runs with tracing armed
    /// (`--trace-out` / `spidermine_telemetry::arm`).
    pub fn trace_json(&self) -> Result<String, TransportError> {
        let (id, events) = self.inner.register();
        let result = (|| {
            self.inner.send_frame(&Frame::TraceRequest { id })?;
            match events.recv() {
                Ok(Event::Trace(json)) => Ok(json),
                Ok(Event::Lost(error)) => Err(error),
                Ok(_) => Err(TransportError::Protocol("expected a Trace response".into())),
                Err(_) => Err(TransportError::Closed),
            }
        })();
        self.inner.unregister(id);
        result
    }
}

/// The reconstructed result of a remote run: the outcome (byte-identical to
/// an in-process run under the engine's semantic encoding) plus
/// transport-level facts.
#[derive(Debug, Clone)]
pub struct RemoteOutcome {
    /// The mining outcome. `patterns` is rebuilt from the streamed frames
    /// (re-ordered per the server's order table); wall-clock stage timings
    /// are the server's.
    pub outcome: MineOutcome,
    /// Whether the server served this run from its result cache.
    pub from_cache: bool,
    /// The server-side job id.
    pub job: u64,
    /// The telemetry trace id the job ran under on both ends of the wire
    /// (client-minted, server-adopted, echoed on the `Done` frame).
    pub trace: u64,
}

/// An accepted remote request. Iterate it to receive accepted patterns as
/// the server streams them (mid-run, not buffered until completion), then
/// call [`outcome`](Self::outcome) to finish. Mirrors the in-process
/// `JobHandle`: [`cancel`](Self::cancel) is its `cancel()`, iteration plus
/// `outcome()` is its pattern stream plus `wait()`.
pub struct RemoteJob {
    client: Arc<ClientInner>,
    id: u64,
    job: u64,
    /// Client-minted telemetry trace id carried on the Request frame.
    trace: u64,
    /// The open `remote_job` span; 0 once closed (at settle or drop).
    span: u64,
    events: mpsc::Receiver<Event>,
    /// Data events that arrived before the Accepted frame (possible on
    /// cache hits, whose replay races the acceptance); drained first.
    stash: VecDeque<Event>,
    /// Raw encoded pattern payloads, indexed by stream sequence number.
    /// Retained so `outcome` can rebuild the outcome-order pattern list
    /// from `PatternRef::Streamed` references without re-transfer.
    streamed: Vec<Vec<u8>>,
    /// How many of `streamed` the iterator has handed out.
    delivered: usize,
    done: Option<(bool, Vec<u8>, Vec<PatternRef>, u64)>,
    failed: Option<TransportError>,
}

impl std::fmt::Debug for RemoteJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteJob")
            .field("id", &self.id)
            .field("job", &self.job)
            .field("streamed", &self.streamed.len())
            .field("delivered", &self.delivered)
            .field("settled", &(self.done.is_some() || self.failed.is_some()))
            .finish_non_exhaustive()
    }
}

impl RemoteJob {
    /// The server-side job id (stable across cache hits of the same
    /// request? No — each submission gets a fresh id; cache hits are
    /// visible via [`RemoteOutcome::from_cache`] instead).
    pub fn job_id(&self) -> u64 {
        self.job
    }

    /// The telemetry trace id this job runs under (client-minted, carried
    /// on the Request frame, adopted by the server's scheduler).
    pub fn trace(&self) -> u64 {
        self.trace
    }

    /// Closes the client-side `remote_job` span exactly once.
    fn close_span(&mut self) {
        if self.span != 0 {
            telemetry::span_end("remote_job", self.trace, self.span);
            self.span = 0;
        }
    }

    /// Asks the server to fire the job's cancel token. The job still
    /// settles (with its partial outcome) — keep iterating / call
    /// [`outcome`](Self::outcome) to observe the cancelled result.
    pub fn cancel(&self) -> Result<(), TransportError> {
        self.client.send_frame(&Frame::Cancel { id: self.id })
    }

    /// Receives events until the next pattern, Done, or failure.
    fn pump(&mut self) {
        while self.done.is_none() && self.failed.is_none() && self.delivered >= self.streamed.len()
        {
            let event = match self.stash.pop_front() {
                Some(event) => Ok(event),
                None => self.events.recv(),
            };
            match event {
                Ok(Event::Pattern { seq, bytes }) => {
                    if seq as usize != self.streamed.len() {
                        self.failed = Some(TransportError::Protocol(format!(
                            "pattern sequence jumped: expected {}, got {seq}",
                            self.streamed.len()
                        )));
                        return;
                    }
                    self.streamed.push(bytes);
                }
                Ok(Event::Done {
                    from_cache,
                    meta,
                    order,
                    trace,
                }) => {
                    self.done = Some((from_cache, meta, order, trace));
                    self.close_span();
                }
                Ok(Event::Failed(message)) => {
                    self.failed = Some(TransportError::Job(message));
                    self.close_span();
                }
                Ok(Event::Lost(error)) => {
                    self.failed = Some(error);
                    self.close_span();
                }
                Ok(
                    Event::Accepted { .. }
                    | Event::Rejected(_)
                    | Event::Stats(_)
                    | Event::Metrics(_)
                    | Event::Trace(_),
                ) => {
                    self.failed = Some(TransportError::Protocol(
                        "unexpected frame mid-stream".into(),
                    ));
                    self.close_span();
                }
                Err(_) => {
                    self.failed = Some(TransportError::Closed);
                    self.close_span();
                }
            }
        }
    }

    /// Drains the stream and reconstructs the final [`MineOutcome`]. The
    /// pattern list follows the server's outcome order (which for some
    /// algorithms differs from emission order); each pattern decodes from
    /// the exact bytes the server streamed, so the result is byte-identical
    /// to the server's under `encode_outcome_semantic`.
    pub fn outcome(mut self) -> Result<RemoteOutcome, TransportError> {
        loop {
            self.pump();
            if self.done.is_some() || self.failed.is_some() {
                break;
            }
            // Unconsumed streamed patterns: skip them, keep pumping.
            self.delivered = self.streamed.len();
        }
        if let Some(error) = self.failed.take() {
            return Err(error);
        }
        let (from_cache, meta, order, trace) = self.done.take().expect("loop exits settled");
        let mut outcome = decode_outcome_meta(&meta)?;
        let mut patterns = Vec::with_capacity(order.len());
        for reference in &order {
            let bytes = match reference {
                PatternRef::Streamed(seq) => self.streamed.get(*seq as usize).ok_or_else(|| {
                    TransportError::Protocol(format!(
                        "order table references unstreamed sequence {seq}"
                    ))
                })?,
                PatternRef::Inline(bytes) => bytes,
            };
            patterns.push(decode_pattern(bytes)?);
        }
        outcome.patterns = patterns;
        // Prefer the server's echoed trace id; it equals ours unless the
        // server overrode a zero (never minted here) or predates the field.
        let trace = if trace != 0 { trace } else { self.trace };
        Ok(RemoteOutcome {
            outcome,
            from_cache,
            job: self.job,
            trace,
        })
    }
}

/// Streams accepted patterns in emission order as the server delivers
/// them. Ends at job completion (then use [`RemoteJob::outcome`]) or on a
/// transport error (surfaced by `outcome`).
impl Iterator for RemoteJob {
    type Item = StreamedPattern;

    fn next(&mut self) -> Option<StreamedPattern> {
        self.pump();
        let bytes = self.streamed.get(self.delivered)?;
        match decode_pattern(bytes) {
            Ok(pattern) => {
                self.delivered += 1;
                Some(pattern)
            }
            Err(error) => {
                self.failed = Some(error.into());
                None
            }
        }
    }
}

impl Drop for RemoteJob {
    fn drop(&mut self) {
        // An abandoned (never settled) job still balances its span.
        self.close_span();
        self.client.unregister(self.id);
    }
}
