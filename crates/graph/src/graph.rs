//! The core undirected, simple, vertex-labeled graph.

use crate::csr::CsrIndex;
use crate::label::Label;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// Index of a vertex inside a [`LabeledGraph`].
///
/// Vertex ids are dense: a graph with `n` vertices uses ids `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

/// An undirected, simple, vertex-labeled graph.
///
/// This is both the "single massive network" mined by SpiderMine and the
/// representation of patterns (small frequent subgraphs). Adjacency lists are
/// kept sorted so that `has_edge` is a binary search and neighbor iteration is
/// deterministic — determinism matters because the miners seed their RNGs and
/// the experiment harness must be reproducible.
///
/// The mutable adjacency-list form is the *builder*; read-heavy consumers (the
/// VF2 matcher, spider mining) go through the frozen [`CsrIndex`] returned by
/// [`LabeledGraph::csr`], which is built lazily on first use and invalidated
/// by any mutation.
#[derive(Default, Serialize, Deserialize)]
pub struct LabeledGraph {
    labels: Vec<Label>,
    adjacency: Vec<Vec<VertexId>>,
    edge_count: usize,
    /// Lazily built frozen view; never serialized, reset on mutation.
    #[serde(skip)]
    csr: OnceLock<CsrIndex>,
}

impl Clone for LabeledGraph {
    fn clone(&self) -> Self {
        Self {
            labels: self.labels.clone(),
            adjacency: self.adjacency.clone(),
            edge_count: self.edge_count,
            // The clone is usually cloned *to be mutated* (pattern growth), so
            // dropping the cached index is the right default.
            csr: OnceLock::new(),
        }
    }
}

impl LabeledGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with room for `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            labels: Vec::with_capacity(n),
            adjacency: Vec::with_capacity(n),
            edge_count: 0,
            csr: OnceLock::new(),
        }
    }

    /// Adds a vertex with the given label and returns its id.
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        let id = VertexId(self.labels.len() as u32);
        self.labels.push(label);
        self.adjacency.push(Vec::new());
        self.csr.take();
        id
    }

    /// Adds an undirected edge between `u` and `v`.
    ///
    /// Returns `true` if the edge was inserted, `false` if it already existed
    /// or is a self-loop (self-loops are not allowed in this model).
    ///
    /// # Panics
    /// Panics if either endpoint is not a vertex of the graph.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        assert!(u.index() < self.labels.len(), "vertex {u:?} out of bounds");
        assert!(v.index() < self.labels.len(), "vertex {v:?} out of bounds");
        if u == v {
            return false;
        }
        let pos = match self.adjacency[u.index()].binary_search(&v) {
            Ok(_) => return false,
            Err(pos) => pos,
        };
        self.adjacency[u.index()].insert(pos, v);
        let pos = self.adjacency[v.index()]
            .binary_search(&u)
            .expect_err("adjacency lists out of sync");
        self.adjacency[v.index()].insert(pos, u);
        self.edge_count += 1;
        self.csr.take();
        true
    }

    /// The frozen CSR view of this graph (adjacency CSR, label index,
    /// neighbor-label histograms). Built on first call, cached until the next
    /// mutation. See [`CsrIndex`] and `DESIGN.md`.
    #[inline]
    pub fn csr(&self) -> &CsrIndex {
        self.csr.get_or_init(|| CsrIndex::build(self))
    }

    /// All vertices carrying label `l`, ascending by id (via the label index).
    #[inline]
    pub fn vertices_with_label(&self, l: Label) -> &[VertexId] {
        self.csr().vertices_with_label(l)
    }

    /// The `(label, count)` histogram of `v`'s neighbor labels, sorted by
    /// label (via the CSR index).
    #[inline]
    pub fn neighbor_label_histogram(&self, v: VertexId) -> &[(Label, u32)] {
        self.csr().neighbor_label_histogram(v)
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The paper defines the *size* of a pattern as its number of edges.
    #[inline]
    pub fn size(&self) -> usize {
        self.edge_count
    }

    /// Label of vertex `v`.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v.index()]
    }

    /// Sorted neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adjacency[v.index()]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adjacency[v.index()].len()
    }

    /// Whether the undirected edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.adjacency[u.index()].binary_search(&v).is_ok()
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.labels.len() as u32).map(VertexId)
    }

    /// Iterates over all undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// All vertex labels, indexed by vertex id.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// True if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Average degree `2|E| / |V|` (0.0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.labels.len() as f64
        }
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of distinct labels used in the graph.
    pub fn distinct_label_count(&self) -> usize {
        let mut labels: Vec<u32> = self.labels.iter().map(|l| l.0).collect();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }

    /// Builds a graph directly from flat CSR arrays: per-vertex labels, row
    /// offsets (length `labels.len() + 1`), and concatenated sorted neighbor
    /// rows.
    ///
    /// This is the fast path behind snapshot loading (`io::load_snapshot`):
    /// it slices each adjacency row straight out of `neighbors` instead of
    /// inserting edges one by one. The caller must pass well-formed data —
    /// monotone offsets, each row strictly ascending with no self-loops, and
    /// symmetric adjacency (`v ∈ row(u) ⇔ u ∈ row(v)`); `io` validates all of
    /// that before calling here. Violations are caught by `debug_assert` only.
    pub fn from_csr_parts(labels: Vec<Label>, offsets: &[u32], neighbors: &[VertexId]) -> Self {
        debug_assert_eq!(offsets.len(), labels.len() + 1);
        debug_assert_eq!(offsets.first().copied().unwrap_or(0), 0);
        debug_assert_eq!(
            offsets.last().copied().unwrap_or(0) as usize,
            neighbors.len()
        );
        debug_assert_eq!(neighbors.len() % 2, 0);
        let adjacency: Vec<Vec<VertexId>> = (0..labels.len())
            .map(|i| neighbors[offsets[i] as usize..offsets[i + 1] as usize].to_vec())
            .collect();
        debug_assert!(adjacency
            .iter()
            .all(|row| row.windows(2).all(|w| w[0] < w[1])));
        Self {
            labels,
            edge_count: neighbors.len() / 2,
            adjacency,
            csr: OnceLock::new(),
        }
    }

    /// Builds a graph directly from a label slice and an edge list.
    ///
    /// Convenience constructor used pervasively in tests and generators.
    pub fn from_parts(labels: &[Label], edges: &[(u32, u32)]) -> Self {
        let mut g = Self::with_capacity(labels.len());
        for &l in labels {
            g.add_vertex(l);
        }
        for &(u, v) in edges {
            g.add_edge(VertexId(u), VertexId(v));
        }
        g
    }
}

impl fmt::Debug for LabeledGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LabeledGraph(|V|={}, |E|={})",
            self.vertex_count(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> LabeledGraph {
        LabeledGraph::from_parts(&[Label(0), Label(1), Label(2)], &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn add_vertex_and_edge_basics() {
        let mut g = LabeledGraph::new();
        let a = g.add_vertex(Label(5));
        let b = g.add_vertex(Label(6));
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert!(g.add_edge(a, b));
        assert!(!g.add_edge(a, b), "duplicate edge must be rejected");
        assert!(!g.add_edge(b, a), "reverse duplicate must be rejected");
        assert!(!g.add_edge(a, a), "self loop must be rejected");
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(a, b));
        assert!(g.has_edge(b, a));
        assert_eq!(g.label(a), Label(5));
        assert_eq!(g.degree(a), 1);
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut g = LabeledGraph::new();
        let vs: Vec<_> = (0..5).map(|_| g.add_vertex(Label(0))).collect();
        g.add_edge(vs[0], vs[3]);
        g.add_edge(vs[0], vs[1]);
        g.add_edge(vs[0], vs[4]);
        g.add_edge(vs[0], vs[2]);
        let n: Vec<u32> = g.neighbors(vs[0]).iter().map(|v| v.0).collect();
        assert_eq!(n, vec![1, 2, 3, 4]);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v) in edges {
            assert!(u < v);
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn stats_helpers() {
        let g = triangle();
        assert_eq!(g.size(), 3);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.distinct_label_count(), 3);
        assert!(!g.is_empty());
        assert_eq!(LabeledGraph::new().average_degree(), 0.0);
        assert_eq!(LabeledGraph::new().max_degree(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_edge_panics_on_unknown_vertex() {
        let mut g = LabeledGraph::new();
        g.add_vertex(Label(0));
        g.add_edge(VertexId(0), VertexId(7));
    }

    #[test]
    fn from_parts_roundtrip() {
        let g = LabeledGraph::from_parts(&[Label(1), Label(1)], &[(0, 1)]);
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(VertexId(0), VertexId(1)));
    }
}
