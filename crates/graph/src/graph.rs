//! The core undirected, simple, vertex-labeled graph.

use crate::csr::{CsrIndex, PackedLabelIndex};
use crate::label::Label;
use crate::shared::ArcSlice;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// Index of a vertex inside a [`LabeledGraph`].
///
/// Vertex ids are dense: a graph with `n` vertices uses ids `0..n`.
/// `#[repr(transparent)]` over `u32` lets the snapshot reader reinterpret
/// on-disk neighbor sections as `&[VertexId]` in place (see
/// [`crate::shared::Word`]).
#[repr(transparent)]
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VertexId(pub u32);

// SAFETY: repr(transparent) over u32 — size 4, align 4, all bit patterns valid.
unsafe impl crate::shared::Word for VertexId {
    #[inline]
    fn from_u32(raw: u32) -> Self {
        VertexId(raw)
    }
}

impl VertexId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

/// An undirected, simple, vertex-labeled graph.
///
/// This is both the "single massive network" mined by SpiderMine and the
/// representation of patterns (small frequent subgraphs). Adjacency lists are
/// kept sorted so that `has_edge` is a binary search and neighbor iteration is
/// deterministic — determinism matters because the miners seed their RNGs and
/// the experiment harness must be reproducible.
///
/// The mutable adjacency-list form is the *builder*; read-heavy consumers (the
/// VF2 matcher, spider mining) go through the frozen [`CsrIndex`] returned by
/// [`LabeledGraph::csr`], which is built lazily on first use and invalidated
/// by any mutation.
///
/// # Storage modes
///
/// A graph is backed by one of two storages:
///
/// * **Lists** — one sorted `Vec<VertexId>` per vertex, the mutable builder
///   every generator and pattern-growth path uses.
/// * **Frozen** — flat CSR arrays (`offsets` + `neighbors`) held as
///   reference-counted [`ArcSlice`]s. This is what snapshot loading produces:
///   the slices can point straight into a memory-mapped snapshot file
///   (zero-copy) or into buffers decoded from one. A frozen graph always
///   carries a pre-seeded [`CsrIndex`] sharing the same slices, so
///   registration never re-freezes what the snapshot already froze.
///
/// Mutating a frozen graph (`add_vertex` / `add_edge`) transparently *thaws*
/// it back into list form first — a one-time O(|V| + |E|) copy — so the
/// mutable API keeps working on loaded graphs.
#[derive(Serialize, Deserialize)]
pub struct LabeledGraph {
    labels: Labels,
    adjacency: Adjacency,
    edge_count: usize,
    /// Lazily built frozen view; never serialized, reset on mutation.
    #[serde(skip)]
    csr: OnceLock<CsrIndex>,
}

/// Vertex labels: owned (builder) or shared (snapshot-backed).
enum Labels {
    Owned(Vec<Label>),
    Shared(ArcSlice<Label>),
}

/// Adjacency storage: per-vertex lists (builder) or flat CSR slices (frozen).
enum Adjacency {
    Lists(Vec<Vec<VertexId>>),
    Frozen {
        /// Row offsets into `neighbors`; length `|V| + 1`.
        offsets: ArcSlice<u32>,
        /// Concatenated sorted adjacency rows.
        neighbors: ArcSlice<VertexId>,
    },
}

impl Default for LabeledGraph {
    fn default() -> Self {
        Self {
            labels: Labels::Owned(Vec::new()),
            adjacency: Adjacency::Lists(Vec::new()),
            edge_count: 0,
            csr: OnceLock::new(),
        }
    }
}

impl Clone for LabeledGraph {
    fn clone(&self) -> Self {
        Self {
            labels: match &self.labels {
                Labels::Owned(v) => Labels::Owned(v.clone()),
                Labels::Shared(s) => Labels::Shared(s.clone()),
            },
            adjacency: match &self.adjacency {
                Adjacency::Lists(rows) => Adjacency::Lists(rows.clone()),
                Adjacency::Frozen { offsets, neighbors } => Adjacency::Frozen {
                    offsets: offsets.clone(),
                    neighbors: neighbors.clone(),
                },
            },
            edge_count: self.edge_count,
            // The clone is usually cloned *to be mutated* (pattern growth), so
            // dropping the cached index is the right default; a frozen clone
            // rebuilds its index from the shared slices without copying them.
            csr: OnceLock::new(),
        }
    }
}

impl LabeledGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with room for `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            labels: Labels::Owned(Vec::with_capacity(n)),
            adjacency: Adjacency::Lists(Vec::with_capacity(n)),
            edge_count: 0,
            csr: OnceLock::new(),
        }
    }

    /// Converts frozen (snapshot-backed) storage back into mutable adjacency
    /// lists so the builder API keeps working on loaded graphs. A no-op for
    /// graphs already in list form.
    fn thaw(&mut self) {
        if let Adjacency::Frozen { offsets, neighbors } = &self.adjacency {
            let rows: Vec<Vec<VertexId>> = (0..offsets.len().saturating_sub(1))
                .map(|i| neighbors[offsets[i] as usize..offsets[i + 1] as usize].to_vec())
                .collect();
            self.adjacency = Adjacency::Lists(rows);
        }
        if let Labels::Shared(shared) = &self.labels {
            self.labels = Labels::Owned(shared.to_vec());
        }
    }

    /// The owned label vector; thaws shared storage first.
    fn labels_mut(&mut self) -> &mut Vec<Label> {
        self.thaw();
        match &mut self.labels {
            Labels::Owned(v) => v,
            Labels::Shared(_) => unreachable!("thaw() leaves labels owned"),
        }
    }

    /// The mutable adjacency lists; thaws frozen storage first.
    fn lists_mut(&mut self) -> &mut Vec<Vec<VertexId>> {
        self.thaw();
        match &mut self.adjacency {
            Adjacency::Lists(rows) => rows,
            Adjacency::Frozen { .. } => unreachable!("thaw() leaves adjacency in list form"),
        }
    }

    /// Adds a vertex with the given label and returns its id.
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        let id = VertexId(self.vertex_count() as u32);
        self.labels_mut().push(label);
        self.lists_mut().push(Vec::new());
        self.csr.take();
        id
    }

    /// Adds an undirected edge between `u` and `v`.
    ///
    /// Returns `true` if the edge was inserted, `false` if it already existed
    /// or is a self-loop (self-loops are not allowed in this model).
    ///
    /// # Panics
    /// Panics if either endpoint is not a vertex of the graph.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let n = self.vertex_count();
        assert!(u.index() < n, "vertex {u:?} out of bounds");
        assert!(v.index() < n, "vertex {v:?} out of bounds");
        if u == v {
            return false;
        }
        let rows = self.lists_mut();
        let pos = match rows[u.index()].binary_search(&v) {
            Ok(_) => return false,
            Err(pos) => pos,
        };
        rows[u.index()].insert(pos, v);
        let pos = rows[v.index()]
            .binary_search(&u)
            .expect_err("adjacency lists out of sync");
        rows[v.index()].insert(pos, u);
        self.edge_count += 1;
        self.csr.take();
        true
    }

    /// The frozen CSR view of this graph (adjacency CSR, label index,
    /// neighbor-label histograms). Built on first call, cached until the next
    /// mutation. See [`CsrIndex`] and `DESIGN.md`.
    #[inline]
    pub fn csr(&self) -> &CsrIndex {
        self.csr.get_or_init(|| CsrIndex::build(self))
    }

    /// All vertices carrying label `l`, ascending by id (via the label index).
    #[inline]
    pub fn vertices_with_label(&self, l: Label) -> &[VertexId] {
        self.csr().vertices_with_label(l)
    }

    /// The `(label, count)` histogram of `v`'s neighbor labels, sorted by
    /// label (via the CSR index).
    #[inline]
    pub fn neighbor_label_histogram(&self, v: VertexId) -> &[(Label, u32)] {
        self.csr().neighbor_label_histogram(v)
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        match &self.labels {
            Labels::Owned(v) => v.len(),
            Labels::Shared(s) => s.len(),
        }
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The paper defines the *size* of a pattern as its number of edges.
    #[inline]
    pub fn size(&self) -> usize {
        self.edge_count
    }

    /// Label of vertex `v`.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels()[v.index()]
    }

    /// Sorted neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        match &self.adjacency {
            Adjacency::Lists(rows) => &rows[v.index()],
            Adjacency::Frozen { offsets, neighbors } => {
                &neighbors[offsets[v.index()] as usize..offsets[v.index() + 1] as usize]
            }
        }
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        match &self.adjacency {
            Adjacency::Lists(rows) => rows[v.index()].len(),
            Adjacency::Frozen { offsets, .. } => {
                (offsets[v.index() + 1] - offsets[v.index()]) as usize
            }
        }
    }

    /// Whether the undirected edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertex_count() as u32).map(VertexId)
    }

    /// Iterates over all undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// All vertex labels, indexed by vertex id.
    pub fn labels(&self) -> &[Label] {
        match &self.labels {
            Labels::Owned(v) => v,
            Labels::Shared(s) => s,
        }
    }

    /// True if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertex_count() == 0
    }

    /// Average degree `2|E| / |V|` (0.0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.vertex_count() as f64
        }
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        match &self.adjacency {
            Adjacency::Lists(rows) => rows.iter().map(Vec::len).max().unwrap_or(0),
            Adjacency::Frozen { offsets, .. } => offsets
                .windows(2)
                .map(|w| (w[1] - w[0]) as usize)
                .max()
                .unwrap_or(0),
        }
    }

    /// Number of distinct labels used in the graph.
    pub fn distinct_label_count(&self) -> usize {
        let mut labels: Vec<u32> = self.labels().iter().map(|l| l.0).collect();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }

    /// The vertex labels as a cheaply clonable shared slice (for the CSR
    /// index, which must outlive borrows of the graph's internals).
    pub(crate) fn shared_labels(&self) -> ArcSlice<Label> {
        match &self.labels {
            Labels::Owned(v) => ArcSlice::from_vec(v.clone()),
            Labels::Shared(s) => s.clone(),
        }
    }

    /// The frozen CSR arrays, if this graph is snapshot-backed. `None` for
    /// graphs in mutable list form.
    pub(crate) fn frozen_parts(&self) -> Option<(ArcSlice<u32>, ArcSlice<VertexId>)> {
        match &self.adjacency {
            Adjacency::Frozen { offsets, neighbors } => Some((offsets.clone(), neighbors.clone())),
            Adjacency::Lists(_) => None,
        }
    }

    /// Builds a graph directly from flat CSR arrays: per-vertex labels, row
    /// offsets (length `labels.len() + 1`), and concatenated sorted neighbor
    /// rows.
    ///
    /// This is the fast path behind snapshot loading (`io::load_snapshot`):
    /// it slices each adjacency row straight out of `neighbors` instead of
    /// inserting edges one by one. The caller must pass well-formed data —
    /// monotone offsets, each row strictly ascending with no self-loops, and
    /// symmetric adjacency (`v ∈ row(u) ⇔ u ∈ row(v)`); `io` validates all of
    /// that before calling here. Violations are caught by `debug_assert` only.
    pub fn from_csr_parts(labels: Vec<Label>, offsets: &[u32], neighbors: &[VertexId]) -> Self {
        Self::from_shared_parts(
            ArcSlice::from_vec(labels),
            ArcSlice::from_vec(offsets.to_vec()),
            ArcSlice::from_vec(neighbors.to_vec()),
            None,
        )
    }

    /// Builds a frozen graph over shared flat CSR arrays without copying them.
    ///
    /// This is the zero-copy endpoint of snapshot loading: the slices can
    /// point straight into a memory mapping, and the graph's [`CsrIndex`] is
    /// pre-seeded over the *same* slices, so a later [`LabeledGraph::csr`]
    /// call returns it without building (or allocating) anything. `packed`
    /// optionally carries a v2 snapshot's undecoded label-index section for
    /// lazy decoding.
    ///
    /// The same well-formedness contract as [`LabeledGraph::from_csr_parts`]
    /// applies; `io` validates before calling here.
    pub fn from_shared_parts(
        labels: ArcSlice<Label>,
        offsets: ArcSlice<u32>,
        neighbors: ArcSlice<VertexId>,
        packed: Option<PackedLabelIndex>,
    ) -> Self {
        debug_assert_eq!(offsets.len(), labels.len() + 1);
        debug_assert_eq!(offsets.first().copied().unwrap_or(0), 0);
        debug_assert_eq!(
            offsets.last().copied().unwrap_or(0) as usize,
            neighbors.len()
        );
        debug_assert_eq!(neighbors.len() % 2, 0);
        debug_assert!((0..labels.len()).all(|i| {
            neighbors[offsets[i] as usize..offsets[i + 1] as usize]
                .windows(2)
                .all(|w| w[0] < w[1])
        }));
        let csr = OnceLock::new();
        csr.set(CsrIndex::from_arrays(
            labels.clone(),
            offsets.clone(),
            neighbors.clone(),
            packed,
        ))
        .unwrap_or_else(|_| unreachable!("freshly created OnceLock"));
        Self {
            edge_count: neighbors.len() / 2,
            labels: Labels::Shared(labels),
            adjacency: Adjacency::Frozen { offsets, neighbors },
            csr,
        }
    }

    /// Builds a graph directly from a label slice and an edge list.
    ///
    /// Convenience constructor used pervasively in tests and generators.
    pub fn from_parts(labels: &[Label], edges: &[(u32, u32)]) -> Self {
        let mut g = Self::with_capacity(labels.len());
        for &l in labels {
            g.add_vertex(l);
        }
        for &(u, v) in edges {
            g.add_edge(VertexId(u), VertexId(v));
        }
        g
    }
}

impl fmt::Debug for LabeledGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LabeledGraph(|V|={}, |E|={})",
            self.vertex_count(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> LabeledGraph {
        LabeledGraph::from_parts(&[Label(0), Label(1), Label(2)], &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn add_vertex_and_edge_basics() {
        let mut g = LabeledGraph::new();
        let a = g.add_vertex(Label(5));
        let b = g.add_vertex(Label(6));
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert!(g.add_edge(a, b));
        assert!(!g.add_edge(a, b), "duplicate edge must be rejected");
        assert!(!g.add_edge(b, a), "reverse duplicate must be rejected");
        assert!(!g.add_edge(a, a), "self loop must be rejected");
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(a, b));
        assert!(g.has_edge(b, a));
        assert_eq!(g.label(a), Label(5));
        assert_eq!(g.degree(a), 1);
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut g = LabeledGraph::new();
        let vs: Vec<_> = (0..5).map(|_| g.add_vertex(Label(0))).collect();
        g.add_edge(vs[0], vs[3]);
        g.add_edge(vs[0], vs[1]);
        g.add_edge(vs[0], vs[4]);
        g.add_edge(vs[0], vs[2]);
        let n: Vec<u32> = g.neighbors(vs[0]).iter().map(|v| v.0).collect();
        assert_eq!(n, vec![1, 2, 3, 4]);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v) in edges {
            assert!(u < v);
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn stats_helpers() {
        let g = triangle();
        assert_eq!(g.size(), 3);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.distinct_label_count(), 3);
        assert!(!g.is_empty());
        assert_eq!(LabeledGraph::new().average_degree(), 0.0);
        assert_eq!(LabeledGraph::new().max_degree(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_edge_panics_on_unknown_vertex() {
        let mut g = LabeledGraph::new();
        g.add_vertex(Label(0));
        g.add_edge(VertexId(0), VertexId(7));
    }

    #[test]
    fn from_parts_roundtrip() {
        let g = LabeledGraph::from_parts(&[Label(1), Label(1)], &[(0, 1)]);
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(VertexId(0), VertexId(1)));
    }
}
