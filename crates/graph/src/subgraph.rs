//! Subgraph extraction.
//!
//! Embeddings, spiders and merged patterns are all *subgraphs of the data
//! graph re-expressed as standalone [`LabeledGraph`]s*; this module does the
//! extraction while remembering how extracted vertices map back to the data
//! graph.

use crate::graph::{LabeledGraph, VertexId};
use rustc_hash::FxHashMap;

/// A subgraph extracted from a host graph, together with the mapping from the
/// new (dense) vertex ids back to the host graph's vertex ids.
#[derive(Clone, Debug)]
pub struct ExtractedSubgraph {
    /// The extracted subgraph, with vertices renumbered `0..k`.
    pub graph: LabeledGraph,
    /// `origin[i]` is the host-graph vertex that became vertex `i`.
    pub origin: Vec<VertexId>,
}

impl ExtractedSubgraph {
    /// Maps a vertex of the extracted subgraph back to the host graph.
    pub fn to_host(&self, v: VertexId) -> VertexId {
        self.origin[v.index()]
    }

    /// Returns the host-graph vertex set of this subgraph.
    pub fn host_vertices(&self) -> &[VertexId] {
        &self.origin
    }
}

/// Extracts the subgraph *induced* by `vertices`: all edges of the host graph
/// between two selected vertices are kept.
///
/// Duplicate entries in `vertices` are ignored (first occurrence wins).
pub fn induced_subgraph(host: &LabeledGraph, vertices: &[VertexId]) -> ExtractedSubgraph {
    let mut index: FxHashMap<VertexId, VertexId> = FxHashMap::default();
    let mut graph = LabeledGraph::with_capacity(vertices.len());
    let mut origin = Vec::with_capacity(vertices.len());
    for &v in vertices {
        if index.contains_key(&v) {
            continue;
        }
        let new_id = graph.add_vertex(host.label(v));
        index.insert(v, new_id);
        origin.push(v);
    }
    for (&host_v, &new_v) in &index {
        for &host_u in host.neighbors(host_v) {
            if let Some(&new_u) = index.get(&host_u) {
                if new_v < new_u {
                    graph.add_edge(new_v, new_u);
                }
            }
        }
    }
    ExtractedSubgraph { graph, origin }
}

/// Extracts the subgraph consisting of exactly `edges` (host-graph edges) and
/// their endpoints. Edges absent from the host graph are rejected.
///
/// # Panics
/// Panics if an edge of `edges` is not present in `host`.
pub fn edge_subgraph(host: &LabeledGraph, edges: &[(VertexId, VertexId)]) -> ExtractedSubgraph {
    let mut index: FxHashMap<VertexId, VertexId> = FxHashMap::default();
    let mut graph = LabeledGraph::new();
    let mut origin = Vec::new();
    let mut intern = |v: VertexId, graph: &mut LabeledGraph, origin: &mut Vec<VertexId>| {
        *index.entry(v).or_insert_with(|| {
            let id = graph.add_vertex(host.label(v));
            origin.push(v);
            id
        })
    };
    for &(u, v) in edges {
        assert!(host.has_edge(u, v), "edge ({u:?}, {v:?}) not in host graph");
        let nu = intern(u, &mut graph, &mut origin);
        let nv = intern(v, &mut graph, &mut origin);
        graph.add_edge(nu, nv);
    }
    ExtractedSubgraph { graph, origin }
}

/// Builds the union of several vertex sets of the host graph and extracts the
/// induced subgraph on the union. Used when merging overlapping embeddings.
pub fn induced_union_subgraph(
    host: &LabeledGraph,
    vertex_sets: &[&[VertexId]],
) -> ExtractedSubgraph {
    let mut all: Vec<VertexId> = Vec::new();
    for set in vertex_sets {
        all.extend_from_slice(set);
    }
    all.sort_unstable();
    all.dedup();
    induced_subgraph(host, &all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    fn square_with_diagonal() -> LabeledGraph {
        // 0-1, 1-2, 2-3, 3-0, 0-2
        LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(2), Label(3)],
            &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
        )
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = square_with_diagonal();
        let sub = induced_subgraph(&g, &[VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(sub.graph.vertex_count(), 3);
        // edges 0-1, 1-2, 0-2 all induced
        assert_eq!(sub.graph.edge_count(), 3);
        assert_eq!(sub.to_host(VertexId(0)), VertexId(0));
        assert_eq!(sub.host_vertices().len(), 3);
    }

    #[test]
    fn induced_subgraph_ignores_duplicates() {
        let g = square_with_diagonal();
        let sub = induced_subgraph(&g, &[VertexId(0), VertexId(0), VertexId(1)]);
        assert_eq!(sub.graph.vertex_count(), 2);
        assert_eq!(sub.graph.edge_count(), 1);
    }

    #[test]
    fn induced_subgraph_preserves_labels() {
        let g = square_with_diagonal();
        let sub = induced_subgraph(&g, &[VertexId(3), VertexId(2)]);
        let labels: Vec<Label> = sub.graph.vertices().map(|v| sub.graph.label(v)).collect();
        assert!(labels.contains(&Label(2)));
        assert!(labels.contains(&Label(3)));
    }

    #[test]
    fn edge_subgraph_keeps_only_listed_edges() {
        let g = square_with_diagonal();
        let sub = edge_subgraph(
            &g,
            &[(VertexId(0), VertexId(1)), (VertexId(2), VertexId(3))],
        );
        assert_eq!(sub.graph.vertex_count(), 4);
        assert_eq!(sub.graph.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "not in host graph")]
    fn edge_subgraph_rejects_phantom_edges() {
        let g = square_with_diagonal();
        edge_subgraph(&g, &[(VertexId(1), VertexId(3))]);
    }

    #[test]
    fn union_subgraph_merges_vertex_sets() {
        let g = square_with_diagonal();
        let a = [VertexId(0), VertexId(1)];
        let b = [VertexId(1), VertexId(2), VertexId(3)];
        let sub = induced_union_subgraph(&g, &[&a, &b]);
        assert_eq!(sub.graph.vertex_count(), 4);
        assert_eq!(sub.graph.edge_count(), g.edge_count());
    }
}
