//! An arena for pattern graphs: flat vertex/edge pools plus handles.
//!
//! Pattern growth clones small [`LabeledGraph`]s at a furious rate — every
//! candidate extension used to pay three `Vec` allocations (labels, adjacency,
//! per-vertex lists) before it was even scored. A [`PatternStore`] keeps all
//! patterns of one mining phase in two flat pools (a label pool and an edge
//! pool); a pattern is a [`PatternId`] handle denoting a contiguous span of
//! each pool. *Copy-on-grow* ([`PatternStore::grow_attached`]) derives a child
//! pattern by `memcpy`ing the parent's spans to the pool tails and appending
//! the new leaves — no per-pattern allocation, no adjacency rebuild, and the
//! parent stays valid and immutable.
//!
//! Reads go through [`PatternView`], a borrowed span pair that answers the
//! queries the growth loops need (labels, edge list, per-vertex neighbor-label
//! counts). Only patterns that survive beam pruning are ever materialized back
//! into a [`LabeledGraph`] (with [`PatternStore::materialize`]), which is where
//! the allocation savings of the arena come from.

use crate::graph::{LabeledGraph, VertexId};
use crate::label::Label;

/// Handle to a pattern stored in a [`PatternStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternId(pub u32);

impl PatternId {
    /// Returns the handle as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Span of one pattern inside the pools.
#[derive(Clone, Copy, Debug)]
struct Span {
    vstart: u32,
    vlen: u32,
    estart: u32,
    elen: u32,
}

/// Borrowed read view of one stored pattern.
///
/// Vertices are local ids `0..vertex_count()`; edges are `(u, v)` pairs of
/// local ids in insertion order.
#[derive(Clone, Copy, Debug)]
pub struct PatternView<'a> {
    /// Label of each local vertex.
    pub labels: &'a [Label],
    /// Edges as local-id pairs, in insertion order.
    pub edges: &'a [(u32, u32)],
}

impl PatternView<'_> {
    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Label of local vertex `v`.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v.index()]
    }

    /// Calls `f` with the label of every neighbor of `v` (one call per
    /// incident edge). Patterns are small, so an edge scan beats keeping an
    /// adjacency structure coherent across copy-on-grow.
    pub fn for_each_neighbor_label<F: FnMut(Label)>(&self, v: VertexId, mut f: F) {
        let vid = v.0;
        for &(a, b) in self.edges {
            if a == vid {
                f(self.labels[b as usize]);
            } else if b == vid {
                f(self.labels[a as usize]);
            }
        }
    }
}

/// Arena of pattern graphs backed by flat pools. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct PatternStore {
    labels: Vec<Label>,
    edges: Vec<(u32, u32)>,
    spans: Vec<Span>,
}

impl PatternStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store with pool capacity hints: room for roughly
    /// `patterns` patterns of `vertices_each` vertices.
    pub fn with_capacity(patterns: usize, vertices_each: usize) -> Self {
        Self {
            labels: Vec::with_capacity(patterns * vertices_each),
            edges: Vec::with_capacity(patterns * vertices_each),
            spans: Vec::with_capacity(patterns),
        }
    }

    /// Number of patterns stored.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if no pattern has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total pool footprint `(labels, edges)` — a cheap allocation gauge.
    pub fn pool_sizes(&self) -> (usize, usize) {
        (self.labels.len(), self.edges.len())
    }

    /// Copies `graph` into the arena and returns its handle.
    pub fn insert_graph(&mut self, graph: &LabeledGraph) -> PatternId {
        let vstart = self.labels.len() as u32;
        let estart = self.edges.len() as u32;
        self.labels.extend_from_slice(graph.labels());
        self.edges.extend(graph.edges().map(|(u, v)| (u.0, v.0)));
        self.push_span(vstart, estart)
    }

    /// Copies a raw `(labels, edges)` pattern into the arena.
    pub fn insert_parts(&mut self, labels: &[Label], edges: &[(u32, u32)]) -> PatternId {
        let vstart = self.labels.len() as u32;
        let estart = self.edges.len() as u32;
        self.labels.extend_from_slice(labels);
        self.edges.extend_from_slice(edges);
        self.push_span(vstart, estart)
    }

    /// Copy-on-grow: derives a child of `parent` with one fresh vertex per
    /// `(attach, label)` pair, each connected to its (existing, local) attach
    /// vertex. The parent's spans are copied to the pool tails; the parent
    /// handle remains valid and unchanged.
    ///
    /// New vertices get the next local ids in `attachments` order, exactly as
    /// repeated `add_vertex` + `add_edge` calls on a clone would.
    pub fn grow_attached(
        &mut self,
        parent: PatternId,
        attachments: &[(VertexId, Label)],
    ) -> PatternId {
        let Span {
            vstart,
            vlen,
            estart,
            elen,
        } = self.spans[parent.index()];
        let new_vstart = self.labels.len() as u32;
        let new_estart = self.edges.len() as u32;
        let vr = vstart as usize..(vstart + vlen) as usize;
        let er = estart as usize..(estart + elen) as usize;
        self.labels.extend_from_within(vr);
        self.edges.extend_from_within(er);
        for (i, &(attach, label)) in attachments.iter().enumerate() {
            debug_assert!(attach.0 < vlen + i as u32, "attach vertex out of range");
            self.labels.push(label);
            self.edges.push((attach.0, vlen + i as u32));
        }
        self.push_span(new_vstart, new_estart)
    }

    /// Copy-on-grow specialization for star extensions: derives a child of
    /// `parent` with one fresh vertex per label in `leaves`, every one
    /// attached to the same existing vertex `attach`. Equivalent to
    /// [`PatternStore::grow_attached`] with a repeated attach vertex, minus
    /// the temporary attachment buffer.
    pub fn grow_star(
        &mut self,
        parent: PatternId,
        attach: VertexId,
        leaves: &[Label],
    ) -> PatternId {
        let Span {
            vstart,
            vlen,
            estart,
            elen,
        } = self.spans[parent.index()];
        debug_assert!(attach.0 < vlen, "attach vertex out of range");
        let new_vstart = self.labels.len() as u32;
        let new_estart = self.edges.len() as u32;
        self.labels
            .extend_from_within(vstart as usize..(vstart + vlen) as usize);
        self.edges
            .extend_from_within(estart as usize..(estart + elen) as usize);
        for (i, &label) in leaves.iter().enumerate() {
            self.labels.push(label);
            self.edges.push((attach.0, vlen + i as u32));
        }
        self.push_span(new_vstart, new_estart)
    }

    /// Read view of `id`.
    #[inline]
    pub fn view(&self, id: PatternId) -> PatternView<'_> {
        let s = self.spans[id.index()];
        PatternView {
            labels: &self.labels[s.vstart as usize..(s.vstart + s.vlen) as usize],
            edges: &self.edges[s.estart as usize..(s.estart + s.elen) as usize],
        }
    }

    /// Number of vertices of `id` (without touching the pools).
    #[inline]
    pub fn vertex_count(&self, id: PatternId) -> usize {
        self.spans[id.index()].vlen as usize
    }

    /// Number of edges of `id` (without touching the pools).
    #[inline]
    pub fn edge_count(&self, id: PatternId) -> usize {
        self.spans[id.index()].elen as usize
    }

    /// Rebuilds `id` as an owned [`LabeledGraph`].
    ///
    /// The result is identical to the graph the same `add_vertex`/`add_edge`
    /// call sequence would have produced: adjacency lists are sorted by the
    /// builder, so the graph depends only on the stored content.
    pub fn materialize(&self, id: PatternId) -> LabeledGraph {
        let v = self.view(id);
        LabeledGraph::from_parts(v.labels, v.edges)
    }

    /// Drops every stored pattern but keeps the pool allocations, so a reused
    /// store settles into zero-allocation steady state.
    pub fn clear(&mut self) {
        self.labels.clear();
        self.edges.clear();
        self.spans.clear();
    }

    fn push_span(&mut self, vstart: u32, estart: u32) -> PatternId {
        let id = PatternId(self.spans.len() as u32);
        self.spans.push(Span {
            vstart,
            vlen: self.labels.len() as u32 - vstart,
            estart,
            elen: self.edges.len() as u32 - estart,
        });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: u32) -> LabeledGraph {
        let labels: Vec<Label> = (0..n).map(Label).collect();
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        LabeledGraph::from_parts(&labels, &edges)
    }

    #[test]
    fn insert_and_materialize_roundtrip() {
        let g = path_graph(5);
        let mut store = PatternStore::new();
        let id = store.insert_graph(&g);
        assert_eq!(store.vertex_count(id), 5);
        assert_eq!(store.edge_count(id), 4);
        let back = store.materialize(id);
        assert_eq!(back.labels(), g.labels());
        let e1: Vec<_> = back.edges().collect();
        let e2: Vec<_> = g.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn grow_attached_matches_clone_and_mutate() {
        let g = path_graph(3);
        let mut store = PatternStore::new();
        let base = store.insert_graph(&g);
        let child = store.grow_attached(base, &[(VertexId(2), Label(7)), (VertexId(0), Label(9))]);

        let mut expected = g.clone();
        let a = expected.add_vertex(Label(7));
        expected.add_edge(VertexId(2), a);
        let b = expected.add_vertex(Label(9));
        expected.add_edge(VertexId(0), b);

        let got = store.materialize(child);
        assert_eq!(got.labels(), expected.labels());
        assert_eq!(
            got.edges().collect::<Vec<_>>(),
            expected.edges().collect::<Vec<_>>()
        );
        // Parent untouched by copy-on-grow.
        assert_eq!(store.vertex_count(base), 3);
        assert_eq!(store.edge_count(base), 2);
    }

    #[test]
    fn grow_can_attach_to_a_leaf_added_in_the_same_call() {
        let g = path_graph(2);
        let mut store = PatternStore::new();
        let base = store.insert_graph(&g);
        // Second attachment hangs off the first new vertex (local id 2).
        let child = store.grow_attached(base, &[(VertexId(1), Label(5)), (VertexId(2), Label(6))]);
        let got = store.materialize(child);
        assert_eq!(got.vertex_count(), 4);
        assert!(got.has_edge(VertexId(2), VertexId(3)));
    }

    #[test]
    fn grow_star_equals_grow_attached_with_constant_attach() {
        let g = path_graph(3);
        let mut store = PatternStore::new();
        let base = store.insert_graph(&g);
        let a = store.grow_attached(base, &[(VertexId(1), Label(7)), (VertexId(1), Label(8))]);
        let b = store.grow_star(base, VertexId(1), &[Label(7), Label(8)]);
        assert_eq!(store.view(a).labels, store.view(b).labels);
        assert_eq!(store.view(a).edges, store.view(b).edges);
    }

    #[test]
    fn views_answer_neighbor_labels() {
        let g = LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(1), Label(2)],
            &[(0, 1), (0, 2), (0, 3)],
        );
        let mut store = PatternStore::new();
        let id = store.insert_graph(&g);
        let mut seen = Vec::new();
        store
            .view(id)
            .for_each_neighbor_label(VertexId(0), |l| seen.push(l));
        seen.sort();
        assert_eq!(seen, vec![Label(1), Label(1), Label(2)]);
        let mut seen = Vec::new();
        store
            .view(id)
            .for_each_neighbor_label(VertexId(3), |l| seen.push(l));
        assert_eq!(seen, vec![Label(0)]);
    }

    #[test]
    fn many_children_share_pools_without_invalidating_parents() {
        let g = path_graph(4);
        let mut store = PatternStore::new();
        let base = store.insert_graph(&g);
        let mut ids = vec![base];
        for round in 0..5u32 {
            let parent = *ids.last().unwrap();
            let id = store.grow_attached(parent, &[(VertexId(0), Label(100 + round))]);
            ids.push(id);
        }
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(store.vertex_count(id), 4 + i);
            assert_eq!(store.edge_count(id), 3 + i);
        }
        assert_eq!(store.len(), 6);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut store = PatternStore::new();
        store.insert_graph(&path_graph(8));
        let (lcap, ecap) = (store.labels.capacity(), store.edges.capacity());
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.labels.capacity(), lcap);
        assert_eq!(store.edges.capacity(), ecap);
    }

    #[test]
    fn insert_parts_equals_insert_graph() {
        let g = path_graph(4);
        let mut store = PatternStore::new();
        let a = store.insert_graph(&g);
        let edges: Vec<(u32, u32)> = g.edges().map(|(u, v)| (u.0, v.0)).collect();
        let b = store.insert_parts(g.labels(), &edges);
        assert_eq!(store.view(a).labels, store.view(b).labels);
        assert_eq!(store.view(a).edges, store.view(b).edges);
    }
}
