//! Summary statistics for graphs, used by the experiment harness to print the
//! dataset descriptions (Table 1 / Table 3 of the paper).

use crate::graph::LabeledGraph;
use crate::traversal;

/// A bundle of descriptive statistics for a labeled graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of edges.
    pub edges: usize,
    /// Number of distinct vertex labels.
    pub labels: usize,
    /// Average degree `2|E|/|V|`.
    pub average_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of connected components.
    pub components: usize,
}

impl GraphStats {
    /// Computes statistics for `graph`.
    pub fn of(graph: &LabeledGraph) -> Self {
        GraphStats {
            vertices: graph.vertex_count(),
            edges: graph.edge_count(),
            labels: graph.distinct_label_count(),
            average_degree: graph.average_degree(),
            max_degree: graph.max_degree(),
            components: traversal::connected_components(graph).len(),
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} labels={} avg_deg={:.2} max_deg={} components={}",
            self.vertices,
            self.edges,
            self.labels,
            self.average_degree,
            self.max_degree,
            self.components
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    #[test]
    fn stats_of_small_graph() {
        let g =
            LabeledGraph::from_parts(&[Label(0), Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]);
        let s = GraphStats::of(&g);
        assert_eq!(s.vertices, 4);
        assert_eq!(s.edges, 2);
        assert_eq!(s.labels, 3);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.components, 2);
        assert!((s.average_degree - 1.0).abs() < 1e-12);
        let rendered = format!("{s}");
        assert!(rendered.contains("|V|=4"));
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = GraphStats::of(&LabeledGraph::new());
        assert_eq!(s.vertices, 0);
        assert_eq!(s.edges, 0);
        assert_eq!(s.components, 0);
    }
}
