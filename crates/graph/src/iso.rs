//! Label-aware graph isomorphism and subgraph isomorphism (VF2-style).
//!
//! Two distinct questions are answered here:
//!
//! * [`are_isomorphic`] — are two *patterns* the same graph up to relabeling of
//!   vertex ids (Definition 1)? Used to deduplicate patterns during growth.
//! * [`find_embeddings`] / [`count_embeddings_at_least`] — where does a pattern
//!   occur inside a (much larger) data graph? Each occurrence is an
//!   *embedding*, the basis of single-graph support (Section 3).
//!
//! The matcher is a straightforward VF2-style backtracking search with label
//! and degree pruning plus a connectivity-driven search order. It is the
//! correctness oracle for the whole workspace: the cheaper signature /
//! spider-set checks only ever *skip* calls to this module, never replace its
//! verdicts.

use crate::graph::{LabeledGraph, VertexId};
use crate::signature;

/// Upper bound on embeddings materialized by [`find_embeddings`] by default.
pub const DEFAULT_EMBEDDING_CAP: usize = 100_000;

/// Tests labeled-graph isomorphism between two patterns (Definition 1).
pub fn are_isomorphic(a: &LabeledGraph, b: &LabeledGraph) -> bool {
    if a.vertex_count() != b.vertex_count() || a.edge_count() != b.edge_count() {
        return false;
    }
    if signature::invariant_signature(a) != signature::invariant_signature(b) {
        return false;
    }
    // Isomorphism = induced subgraph isomorphism between equal-sized graphs.
    !find_embeddings_impl(a, b, 1, true).is_empty()
}

/// Finds up to `limit` embeddings of `pattern` in `host`.
///
/// An embedding is returned as a vector `m` with `m[p]` = host vertex matched
/// to pattern vertex `p`. Matching is *non-induced*: every pattern edge must be
/// present in the host, extra host edges between matched vertices are allowed.
/// Matched host vertices are pairwise distinct and labels must agree.
pub fn find_embeddings(
    pattern: &LabeledGraph,
    host: &LabeledGraph,
    limit: usize,
) -> Vec<Vec<VertexId>> {
    find_embeddings_impl(pattern, host, limit, false)
}

/// Finds up to `limit` *induced* embeddings (non-edges of the pattern must be
/// non-edges of the host too). Graph isomorphism uses this mode.
pub fn find_induced_embeddings(
    pattern: &LabeledGraph,
    host: &LabeledGraph,
    limit: usize,
) -> Vec<Vec<VertexId>> {
    find_embeddings_impl(pattern, host, limit, true)
}

/// Returns `true` if `pattern` has at least `threshold` embeddings in `host`.
/// Stops searching as soon as the threshold is reached.
pub fn count_embeddings_at_least(
    pattern: &LabeledGraph,
    host: &LabeledGraph,
    threshold: usize,
) -> bool {
    if threshold == 0 {
        return true;
    }
    find_embeddings_impl(pattern, host, threshold, false).len() >= threshold
}

/// Returns `true` if `pattern` occurs at least once in `host`.
pub fn is_subgraph_of(pattern: &LabeledGraph, host: &LabeledGraph) -> bool {
    count_embeddings_at_least(pattern, host, 1)
}

/// Search order: start from the highest-degree pattern vertex, then repeatedly
/// pick an unvisited vertex with the most already-ordered neighbors (ties by
/// degree). Keeps the partial mapping connected, which makes pruning effective.
fn matching_order(pattern: &LabeledGraph) -> Vec<VertexId> {
    let n = pattern.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let first = pattern
        .vertices()
        .max_by_key(|&v| pattern.degree(v))
        .expect("non-empty");
    order.push(first);
    placed[first.index()] = true;
    while order.len() < n {
        let next = pattern
            .vertices()
            .filter(|v| !placed[v.index()])
            .max_by_key(|&v| {
                let connected = pattern
                    .neighbors(v)
                    .iter()
                    .filter(|u| placed[u.index()])
                    .count();
                (connected, pattern.degree(v))
            })
            .expect("some vertex unplaced");
        order.push(next);
        placed[next.index()] = true;
    }
    order
}

fn find_embeddings_impl(
    pattern: &LabeledGraph,
    host: &LabeledGraph,
    limit: usize,
    induced: bool,
) -> Vec<Vec<VertexId>> {
    let pn = pattern.vertex_count();
    if pn == 0 || limit == 0 {
        return Vec::new();
    }
    if pn > host.vertex_count() || pattern.edge_count() > host.edge_count() {
        return Vec::new();
    }
    let order = matching_order(pattern);
    let mut mapping: Vec<Option<VertexId>> = vec![None; pn];
    let mut used = vec![false; host.vertex_count()];
    let mut results = Vec::new();
    backtrack(
        pattern, host, &order, 0, &mut mapping, &mut used, &mut results, limit, induced,
    );
    results
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    pattern: &LabeledGraph,
    host: &LabeledGraph,
    order: &[VertexId],
    depth: usize,
    mapping: &mut Vec<Option<VertexId>>,
    used: &mut Vec<bool>,
    results: &mut Vec<Vec<VertexId>>,
    limit: usize,
    induced: bool,
) {
    if results.len() >= limit {
        return;
    }
    if depth == order.len() {
        results.push(mapping.iter().map(|m| m.expect("complete mapping")).collect());
        return;
    }
    let p = order[depth];
    // Candidate host vertices: if p has an already-mapped neighbor, only that
    // neighbor's host image's neighborhood needs to be scanned; otherwise all
    // host vertices with the right label.
    let anchor = pattern
        .neighbors(p)
        .iter()
        .find(|q| mapping[q.index()].is_some())
        .copied();
    let candidates: Vec<VertexId> = match anchor {
        Some(q) => host.neighbors(mapping[q.index()].expect("anchored")).to_vec(),
        None => host.vertices().collect(),
    };
    'cands: for h in candidates {
        if results.len() >= limit {
            return;
        }
        if used[h.index()] || host.label(h) != pattern.label(p) {
            continue;
        }
        if host.degree(h) < pattern.degree(p) {
            continue;
        }
        // Consistency with all previously mapped pattern vertices.
        for q in pattern.vertices().take_while(|_| true) {
            if let Some(hq) = mapping[q.index()] {
                let p_edge = pattern.has_edge(p, q);
                let h_edge = host.has_edge(h, hq);
                if p_edge && !h_edge {
                    continue 'cands;
                }
                if induced && !p_edge && h_edge {
                    continue 'cands;
                }
            }
        }
        mapping[p.index()] = Some(h);
        used[h.index()] = true;
        backtrack(pattern, host, order, depth + 1, mapping, used, results, limit, induced);
        mapping[p.index()] = None;
        used[h.index()] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    fn labeled_path(labels: &[u32]) -> LabeledGraph {
        let labels: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        let edges: Vec<(u32, u32)> = (0..labels.len() as u32 - 1).map(|i| (i, i + 1)).collect();
        LabeledGraph::from_parts(&labels, &edges)
    }

    #[test]
    fn identical_graphs_are_isomorphic() {
        let a = labeled_path(&[1, 2, 3]);
        let b = labeled_path(&[1, 2, 3]);
        assert!(are_isomorphic(&a, &b));
    }

    #[test]
    fn relabeled_vertex_ids_still_isomorphic() {
        let a = LabeledGraph::from_parts(&[Label(1), Label(2), Label(3)], &[(0, 1), (1, 2)]);
        let b = LabeledGraph::from_parts(&[Label(3), Label(2), Label(1)], &[(0, 1), (1, 2)]);
        assert!(are_isomorphic(&a, &b));
    }

    #[test]
    fn different_labels_not_isomorphic() {
        let a = labeled_path(&[1, 2, 3]);
        let b = labeled_path(&[1, 2, 4]);
        assert!(!are_isomorphic(&a, &b));
    }

    #[test]
    fn different_structure_not_isomorphic() {
        let path = labeled_path(&[1, 1, 1]);
        let triangle =
            LabeledGraph::from_parts(&[Label(1); 3], &[(0, 1), (1, 2), (0, 2)]);
        assert!(!are_isomorphic(&path, &triangle));
    }

    #[test]
    fn path_embeds_in_triangle_but_not_induced() {
        let path = labeled_path(&[1, 1, 1]);
        let triangle =
            LabeledGraph::from_parts(&[Label(1); 3], &[(0, 1), (1, 2), (0, 2)]);
        assert!(is_subgraph_of(&path, &triangle));
        assert!(find_induced_embeddings(&path, &triangle, 10).is_empty());
    }

    #[test]
    fn embedding_count_in_star() {
        // Star: center label 0, three leaves label 1.
        let star = LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(1), Label(1)],
            &[(0, 1), (0, 2), (0, 3)],
        );
        // Pattern: one center label 0 with two leaves label 1.
        let pattern =
            LabeledGraph::from_parts(&[Label(0), Label(1), Label(1)], &[(0, 1), (0, 2)]);
        let embs = find_embeddings(&pattern, &star, 100);
        // 3 choices for first leaf × 2 for second = 6 ordered embeddings.
        assert_eq!(embs.len(), 6);
        for e in &embs {
            assert_eq!(e[0], VertexId(0));
        }
    }

    #[test]
    fn embedding_respects_limit() {
        let star = LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(1), Label(1)],
            &[(0, 1), (0, 2), (0, 3)],
        );
        let pattern =
            LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        assert_eq!(find_embeddings(&pattern, &star, 2).len(), 2);
        assert!(count_embeddings_at_least(&pattern, &star, 3));
        assert!(!count_embeddings_at_least(&pattern, &star, 4));
    }

    #[test]
    fn pattern_larger_than_host_never_embeds() {
        let big = labeled_path(&[1, 1, 1, 1]);
        let small = labeled_path(&[1, 1]);
        assert!(find_embeddings(&big, &small, 10).is_empty());
        assert!(!are_isomorphic(&big, &small));
    }

    #[test]
    fn disconnected_pattern_matches_across_components() {
        let host = LabeledGraph::from_parts(&[Label(1), Label(2), Label(1), Label(2)], &[(0, 1), (2, 3)]);
        let mut pattern = LabeledGraph::new();
        let a = pattern.add_vertex(Label(1));
        let _b = pattern.add_vertex(Label(1));
        let _ = a;
        let embs = find_embeddings(&pattern, &host, 100);
        // two label-1 vertices, ordered pairs without repetition = 2
        assert_eq!(embs.len(), 2);
    }

    #[test]
    fn empty_pattern_has_no_embeddings() {
        let host = labeled_path(&[1, 2]);
        assert!(find_embeddings(&LabeledGraph::new(), &host, 10).is_empty());
    }
}
