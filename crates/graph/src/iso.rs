//! Label-aware graph isomorphism and subgraph isomorphism (VF2-style).
//!
//! Two distinct questions are answered here:
//!
//! * [`are_isomorphic`] — are two *patterns* the same graph up to relabeling of
//!   vertex ids (Definition 1)? Used to deduplicate patterns during growth.
//! * [`find_embeddings`] / [`count_embeddings_at_least`] — where does a pattern
//!   occur inside a (much larger) data graph? Each occurrence is an
//!   *embedding*, the basis of single-graph support (Section 3).
//!
//! The matcher is an indexed, allocation-free VF2 backtracking search over the
//! host's frozen [`CsrIndex`](crate::csr::CsrIndex):
//!
//! * The search order is computed once, incrementally (each placement bumps a
//!   connected-neighbor counter instead of rescanning adjacency lists), and a
//!   per-depth **plan** records which pattern neighbors are already mapped, so
//!   consistency checking touches exactly those vertices instead of scanning
//!   the whole pattern at every node.
//! * Candidates come from the *smallest* adjacency list among the images of
//!   already-mapped pattern neighbors; unanchored vertices (depth 0 or a new
//!   connected component of the pattern) come from the host's label index
//!   instead of a full vertex scan.
//! * The inner loop iterates CSR slices directly — no per-node `Vec` is
//!   allocated anywhere on the search path.
//!
//! Candidate enumeration remains in ascending host-vertex-id order at every
//! depth, so the embeddings are produced in **exactly the same order** as the
//! original textbook implementation — byte-identical results, including under
//! a `limit`. That original implementation is retained in [`mod@reference`] as the
//! correctness oracle for property tests and as the baseline the benchmarks
//! measure speedups against. See `DESIGN.md` § "Matcher search order".

use crate::graph::{LabeledGraph, VertexId};
use crate::label::Label;
use crate::signature;

/// Upper bound on embeddings materialized by [`find_embeddings`] by default.
pub const DEFAULT_EMBEDDING_CAP: usize = 100_000;

/// Sentinel for "pattern vertex not mapped yet".
const UNMAPPED: VertexId = VertexId(u32::MAX);

/// Tests labeled-graph isomorphism between two patterns (Definition 1).
pub fn are_isomorphic(a: &LabeledGraph, b: &LabeledGraph) -> bool {
    if a.vertex_count() != b.vertex_count() || a.edge_count() != b.edge_count() {
        return false;
    }
    if signature::invariant_signature(a) != signature::invariant_signature(b) {
        return false;
    }
    // Isomorphism = induced subgraph isomorphism between equal-sized graphs.
    !find_embeddings_impl(a, b, 1, true).is_empty()
}

/// Finds up to `limit` embeddings of `pattern` in `host`.
///
/// An embedding is returned as a vector `m` with `m[p]` = host vertex matched
/// to pattern vertex `p`. Matching is *non-induced*: every pattern edge must be
/// present in the host, extra host edges between matched vertices are allowed.
/// Matched host vertices are pairwise distinct and labels must agree.
pub fn find_embeddings(
    pattern: &LabeledGraph,
    host: &LabeledGraph,
    limit: usize,
) -> Vec<Vec<VertexId>> {
    find_embeddings_impl(pattern, host, limit, false)
}

/// Finds up to `limit` *induced* embeddings (non-edges of the pattern must be
/// non-edges of the host too). Graph isomorphism uses this mode.
pub fn find_induced_embeddings(
    pattern: &LabeledGraph,
    host: &LabeledGraph,
    limit: usize,
) -> Vec<Vec<VertexId>> {
    find_embeddings_impl(pattern, host, limit, true)
}

/// Returns `true` if `pattern` has at least `threshold` embeddings in `host`.
/// Stops searching as soon as the threshold is reached.
pub fn count_embeddings_at_least(
    pattern: &LabeledGraph,
    host: &LabeledGraph,
    threshold: usize,
) -> bool {
    if threshold == 0 {
        return true;
    }
    find_embeddings_impl(pattern, host, threshold, false).len() >= threshold
}

/// Returns `true` if `pattern` occurs at least once in `host`.
pub fn is_subgraph_of(pattern: &LabeledGraph, host: &LabeledGraph) -> bool {
    count_embeddings_at_least(pattern, host, 1)
}

/// The one-edge delta between a parent pattern and its child, for the
/// incremental extension engine ([`extend_embeddings`]).
///
/// The two cases mirror the classical rightmost-extension moves of
/// edge-growth miners: attach a brand-new vertex, or close an edge between
/// two existing pattern vertices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeExtension {
    /// The child pattern appends one new vertex — its id is the parent's
    /// vertex count — labeled `label` and attached to the existing pattern
    /// vertex `anchor`.
    NewVertex {
        /// Existing parent vertex the new vertex hangs off.
        anchor: VertexId,
        /// Label of the new vertex.
        label: Label,
    },
    /// The child pattern adds the edge `(u, v)` between two existing,
    /// previously non-adjacent parent vertices.
    ClosingEdge {
        /// One endpoint (a parent vertex).
        u: VertexId,
        /// The other endpoint (a parent vertex).
        v: VertexId,
    },
}

/// What [`extend_embeddings`] produced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExtendOutcome {
    /// Number of child embeddings appended to the output buffer.
    pub rows: usize,
    /// True if the `limit` cut enumeration short — the child set is then a
    /// prefix, not the complete extension of the parent set.
    pub truncated: bool,
}

/// Incrementally extends a set of parent embeddings by one pattern edge,
/// against the host's CSR index, instead of re-running the VF2 scratch
/// matcher on the child pattern.
///
/// `parent_flat` holds the parent embeddings back to back (row-major,
/// `arity` host vertices per row — the layout of the `EmbeddingStore` arena
/// in `spidermine-mining`). Child embeddings are appended to `out` in the
/// same flat layout, `arity + 1` wide for [`EdgeExtension::NewVertex`] and
/// `arity` wide for [`EdgeExtension::ClosingEdge`].
///
/// **Invariant** (proptested in `tests/matcher_equivalence.rs`): when the
/// parent set is the *complete* embedding set of the parent pattern, the
/// output is exactly the embedding set of the child pattern that
/// [`find_embeddings`] discovers from scratch — every child embedding
/// restricted to the parent's vertices is a parent embedding, and the
/// restriction is unique, so extending each parent row enumerates each child
/// embedding exactly once. Only the *order* differs from the scratch
/// matcher (rows come out in parent order, then ascending host-neighbor
/// order), which is why the scratch matcher is retained as the equivalence
/// oracle and as the fallback for truncated parent sets.
pub fn extend_embeddings(
    host: &LabeledGraph,
    arity: usize,
    parent_flat: &[VertexId],
    extension: EdgeExtension,
    limit: usize,
    out: &mut Vec<VertexId>,
) -> ExtendOutcome {
    let mut outcome = ExtendOutcome::default();
    if arity == 0 {
        return outcome;
    }
    debug_assert_eq!(parent_flat.len() % arity, 0, "ragged parent rows");
    let csr = host.csr();
    match extension {
        EdgeExtension::NewVertex { anchor, label } => {
            assert!(anchor.index() < arity, "anchor outside the parent pattern");
            out.reserve(parent_flat.len() + parent_flat.len() / arity);
            for row in parent_flat.chunks_exact(arity) {
                let image = row[anchor.index()];
                for &h in csr.neighbors(image) {
                    if host.label(h) != label || row.contains(&h) {
                        continue;
                    }
                    if outcome.rows >= limit {
                        outcome.truncated = true;
                        return outcome;
                    }
                    out.extend_from_slice(row);
                    out.push(h);
                    outcome.rows += 1;
                }
            }
        }
        EdgeExtension::ClosingEdge { u, v } => {
            assert!(
                u.index() < arity && v.index() < arity,
                "closing edge outside the parent pattern"
            );
            for row in parent_flat.chunks_exact(arity) {
                if !csr.has_edge(row[u.index()], row[v.index()]) {
                    continue;
                }
                if outcome.rows >= limit {
                    outcome.truncated = true;
                    return outcome;
                }
                out.extend_from_slice(row);
                outcome.rows += 1;
            }
        }
    }
    outcome
}

/// Applies an [`EdgeExtension`] to a parent pattern, returning the child
/// pattern whose embeddings [`extend_embeddings`] maintains.
pub fn apply_edge_extension(parent: &LabeledGraph, extension: EdgeExtension) -> LabeledGraph {
    let mut child = parent.clone();
    match extension {
        EdgeExtension::NewVertex { anchor, label } => {
            let new_v = child.add_vertex(label);
            child.add_edge(anchor, new_v);
        }
        EdgeExtension::ClosingEdge { u, v } => {
            child.add_edge(u, v);
        }
    }
    child
}

/// Search order: start from the highest-degree pattern vertex, then repeatedly
/// pick an unvisited vertex with the most already-ordered neighbors (ties by
/// degree, later id wins — matching `Iterator::max_by_key`). Keeps the partial
/// mapping connected, which makes pruning effective.
///
/// Connected-neighbor counts are maintained *incrementally*: placing a vertex
/// bumps a counter on each of its neighbors, so one placement costs
/// `O(n + deg)` instead of the `O(n · deg)` rescan of the original
/// implementation.
fn matching_order(pattern: &LabeledGraph) -> Vec<VertexId> {
    let n = pattern.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    // Number of already-ordered neighbors of each unplaced vertex.
    let mut connected = vec![0u32; n];

    let place =
        |v: VertexId, order: &mut Vec<VertexId>, placed: &mut [bool], connected: &mut [u32]| {
            order.push(v);
            placed[v.index()] = true;
            for &u in pattern.neighbors(v) {
                connected[u.index()] += 1;
            }
        };

    let mut first = VertexId(0);
    for v in pattern.vertices() {
        if pattern.degree(v) >= pattern.degree(first) {
            first = v;
        }
    }
    place(first, &mut order, &mut placed, &mut connected);
    while order.len() < n {
        let mut best: Option<VertexId> = None;
        for v in pattern.vertices() {
            if placed[v.index()] {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    (connected[v.index()], pattern.degree(v))
                        >= (connected[b.index()], pattern.degree(b))
                }
            };
            if better {
                best = Some(v);
            }
        }
        let next = best.expect("some vertex unplaced");
        place(next, &mut order, &mut placed, &mut connected);
    }
    order
}

/// The per-depth search plan: which previously-placed pattern vertices each
/// depth must stay consistent with. Computed once per pattern (cached in the
/// pattern's [`CsrIndex`](crate::csr::CsrIndex)), so the hot loop never scans
/// the pattern and repeated matches of the same pattern skip planning
/// entirely.
pub(crate) struct SearchPlan {
    /// Pattern vertices in match order.
    order: Vec<VertexId>,
    /// For each depth `d`: the order-positions `j < d` whose pattern vertex is
    /// adjacent to `order[d]`. These are the *only* vertices a candidate must
    /// be host-adjacent to.
    mapped_neighbors: Vec<Vec<usize>>,
    /// For each depth `d` (induced mode only): the order-positions `j < d`
    /// whose pattern vertex is NOT adjacent to `order[d]` — a candidate must
    /// not be host-adjacent to any of them.
    mapped_non_neighbors: Vec<Vec<usize>>,
}

impl SearchPlan {
    pub(crate) fn build(pattern: &LabeledGraph, induced: bool) -> Self {
        let order = matching_order(pattern);
        let n = order.len();
        let mut mapped_neighbors = Vec::with_capacity(n);
        let mut mapped_non_neighbors = Vec::with_capacity(n);
        for d in 0..n {
            let p = order[d];
            let mut nbrs = Vec::new();
            let mut non = Vec::new();
            for (j, &q) in order[..d].iter().enumerate() {
                if pattern.has_edge(p, q) {
                    nbrs.push(j);
                } else if induced {
                    non.push(j);
                }
            }
            mapped_neighbors.push(nbrs);
            mapped_non_neighbors.push(non);
        }
        Self {
            order,
            mapped_neighbors,
            mapped_non_neighbors,
        }
    }
}

fn find_embeddings_impl(
    pattern: &LabeledGraph,
    host: &LabeledGraph,
    limit: usize,
    induced: bool,
) -> Vec<Vec<VertexId>> {
    let pn = pattern.vertex_count();
    if pn == 0 || limit == 0 {
        return Vec::new();
    }
    if pn > host.vertex_count() || pattern.edge_count() > host.edge_count() {
        return Vec::new();
    }
    let plan = pattern.csr().search_plan(pattern, induced);
    let mut search = Search {
        pattern,
        host,
        plan,
        mapping: vec![UNMAPPED; pn],
        used: vec![false; host.vertex_count()],
        results: Vec::new(),
        limit,
        induced,
    };
    search.run(0);
    search.results
}

/// Mutable search state threaded through the recursion.
struct Search<'a> {
    pattern: &'a LabeledGraph,
    host: &'a LabeledGraph,
    plan: &'a SearchPlan,
    /// `mapping[p]` = host vertex matched to pattern vertex `p` (or UNMAPPED).
    mapping: Vec<VertexId>,
    used: Vec<bool>,
    results: Vec<Vec<VertexId>>,
    limit: usize,
    induced: bool,
}

impl Search<'_> {
    fn run(&mut self, depth: usize) {
        if self.results.len() >= self.limit {
            return;
        }
        if depth == self.plan.order.len() {
            self.results.push(self.mapping.clone());
            return;
        }
        let p = self.plan.order[depth];
        let p_label = self.pattern.label(p);
        let p_degree = self.pattern.degree(p);
        let p_hist = self.pattern.neighbor_label_histogram(p);
        let host_csr = self.host.csr();
        let mapped = &self.plan.mapped_neighbors[depth];

        // Candidate source: the label index when `p` starts a new connected
        // part of the pattern; otherwise the smallest adjacency list among the
        // host images of p's already-mapped neighbors. Both sources are sorted
        // ascending, so enumeration order (and thus result order) is
        // independent of the source chosen.
        // `anchor` is the mapped neighbor whose adjacency list supplies the
        // candidates; every candidate is host-adjacent to it by construction,
        // so the consistency loop below skips it.
        let mut anchor = usize::MAX;
        let candidates: &[VertexId] = if mapped.is_empty() {
            host_csr.vertices_with_label(p_label)
        } else {
            anchor = mapped[0];
            let mut best = self.mapping[self.plan.order[anchor].index()];
            for &j in &mapped[1..] {
                let image = self.mapping[self.plan.order[j].index()];
                if host_csr.degree(image) < host_csr.degree(best) {
                    best = image;
                    anchor = j;
                }
            }
            host_csr.neighbors(best)
        };

        'cands: for &h in candidates {
            if self.results.len() >= self.limit {
                return;
            }
            if self.used[h.index()]
                || self.host.label(h) != p_label
                || host_csr.degree(h) < p_degree
            {
                continue;
            }
            // Capacity pruning: h must offer, for every neighbor label of p,
            // at least as many neighbors of that label (necessary because the
            // pattern neighbors map injectively to distinct host neighbors).
            if p_hist.len() > 1 || (p_hist.len() == 1 && p_hist[0].1 > 1) {
                for &(l, need) in p_hist {
                    if host_csr.neighbor_label_count(h, l) < need {
                        continue 'cands;
                    }
                }
            }
            // Consistency with exactly the already-mapped pattern neighbors
            // (and, in induced mode, non-adjacency with the mapped rest).
            for &j in mapped {
                if j == anchor {
                    continue;
                }
                let image = self.mapping[self.plan.order[j].index()];
                if !host_csr.has_edge(h, image) {
                    continue 'cands;
                }
            }
            if self.induced {
                for &j in &self.plan.mapped_non_neighbors[depth] {
                    let image = self.mapping[self.plan.order[j].index()];
                    if host_csr.has_edge(h, image) {
                        continue 'cands;
                    }
                }
            }
            self.mapping[p.index()] = h;
            self.used[h.index()] = true;
            self.run(depth + 1);
            self.mapping[p.index()] = UNMAPPED;
            self.used[h.index()] = false;
        }
    }
}

pub mod reference {
    //! The original textbook VF2 implementation, retained verbatim as the
    //! correctness oracle: property tests assert the indexed matcher returns
    //! the same embedding sets, and the benchmarks measure speedup against it.
    //!
    //! Its per-node cost is dominated by an all-vertex consistency scan and a
    //! candidate `Vec` allocation per search node — exactly the overheads the
    //! indexed matcher removes.

    use crate::graph::{LabeledGraph, VertexId};

    /// Finds up to `limit` embeddings with the original algorithm.
    pub fn find_embeddings(
        pattern: &LabeledGraph,
        host: &LabeledGraph,
        limit: usize,
    ) -> Vec<Vec<VertexId>> {
        find_embeddings_impl(pattern, host, limit, false)
    }

    /// Finds up to `limit` induced embeddings with the original algorithm.
    pub fn find_induced_embeddings(
        pattern: &LabeledGraph,
        host: &LabeledGraph,
        limit: usize,
    ) -> Vec<Vec<VertexId>> {
        find_embeddings_impl(pattern, host, limit, true)
    }

    fn matching_order(pattern: &LabeledGraph) -> Vec<VertexId> {
        let n = pattern.vertex_count();
        if n == 0 {
            return Vec::new();
        }
        let mut order: Vec<VertexId> = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        let first = pattern
            .vertices()
            .max_by_key(|&v| pattern.degree(v))
            .expect("non-empty");
        order.push(first);
        placed[first.index()] = true;
        while order.len() < n {
            let next = pattern
                .vertices()
                .filter(|v| !placed[v.index()])
                .max_by_key(|&v| {
                    let connected = pattern
                        .neighbors(v)
                        .iter()
                        .filter(|u| placed[u.index()])
                        .count();
                    (connected, pattern.degree(v))
                })
                .expect("some vertex unplaced");
            order.push(next);
            placed[next.index()] = true;
        }
        order
    }

    fn find_embeddings_impl(
        pattern: &LabeledGraph,
        host: &LabeledGraph,
        limit: usize,
        induced: bool,
    ) -> Vec<Vec<VertexId>> {
        let pn = pattern.vertex_count();
        if pn == 0 || limit == 0 {
            return Vec::new();
        }
        if pn > host.vertex_count() || pattern.edge_count() > host.edge_count() {
            return Vec::new();
        }
        let order = matching_order(pattern);
        let mut mapping: Vec<Option<VertexId>> = vec![None; pn];
        let mut used = vec![false; host.vertex_count()];
        let mut results = Vec::new();
        backtrack(
            pattern,
            host,
            &order,
            0,
            &mut mapping,
            &mut used,
            &mut results,
            limit,
            induced,
        );
        results
    }

    #[allow(clippy::too_many_arguments)]
    fn backtrack(
        pattern: &LabeledGraph,
        host: &LabeledGraph,
        order: &[VertexId],
        depth: usize,
        mapping: &mut Vec<Option<VertexId>>,
        used: &mut Vec<bool>,
        results: &mut Vec<Vec<VertexId>>,
        limit: usize,
        induced: bool,
    ) {
        if results.len() >= limit {
            return;
        }
        if depth == order.len() {
            results.push(
                mapping
                    .iter()
                    .map(|m| m.expect("complete mapping"))
                    .collect(),
            );
            return;
        }
        let p = order[depth];
        let anchor = pattern
            .neighbors(p)
            .iter()
            .find(|q| mapping[q.index()].is_some())
            .copied();
        let candidates: Vec<VertexId> = match anchor {
            Some(q) => host
                .neighbors(mapping[q.index()].expect("anchored"))
                .to_vec(),
            None => host.vertices().collect(),
        };
        'cands: for h in candidates {
            if results.len() >= limit {
                return;
            }
            if used[h.index()] || host.label(h) != pattern.label(p) {
                continue;
            }
            if host.degree(h) < pattern.degree(p) {
                continue;
            }
            // Consistency with all previously mapped pattern vertices — the
            // O(n) scan per node the indexed matcher replaces with its plan.
            for q in pattern.vertices() {
                if let Some(hq) = mapping[q.index()] {
                    let p_edge = pattern.has_edge(p, q);
                    let h_edge = host.has_edge(h, hq);
                    if p_edge && !h_edge {
                        continue 'cands;
                    }
                    if induced && !p_edge && h_edge {
                        continue 'cands;
                    }
                }
            }
            mapping[p.index()] = Some(h);
            used[h.index()] = true;
            backtrack(
                pattern,
                host,
                order,
                depth + 1,
                mapping,
                used,
                results,
                limit,
                induced,
            );
            mapping[p.index()] = None;
            used[h.index()] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    fn labeled_path(labels: &[u32]) -> LabeledGraph {
        let labels: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        let edges: Vec<(u32, u32)> = (0..labels.len() as u32 - 1).map(|i| (i, i + 1)).collect();
        LabeledGraph::from_parts(&labels, &edges)
    }

    #[test]
    fn identical_graphs_are_isomorphic() {
        let a = labeled_path(&[1, 2, 3]);
        let b = labeled_path(&[1, 2, 3]);
        assert!(are_isomorphic(&a, &b));
    }

    #[test]
    fn relabeled_vertex_ids_still_isomorphic() {
        let a = LabeledGraph::from_parts(&[Label(1), Label(2), Label(3)], &[(0, 1), (1, 2)]);
        let b = LabeledGraph::from_parts(&[Label(3), Label(2), Label(1)], &[(0, 1), (1, 2)]);
        assert!(are_isomorphic(&a, &b));
    }

    #[test]
    fn different_labels_not_isomorphic() {
        let a = labeled_path(&[1, 2, 3]);
        let b = labeled_path(&[1, 2, 4]);
        assert!(!are_isomorphic(&a, &b));
    }

    #[test]
    fn different_structure_not_isomorphic() {
        let path = labeled_path(&[1, 1, 1]);
        let triangle = LabeledGraph::from_parts(&[Label(1); 3], &[(0, 1), (1, 2), (0, 2)]);
        assert!(!are_isomorphic(&path, &triangle));
    }

    #[test]
    fn path_embeds_in_triangle_but_not_induced() {
        let path = labeled_path(&[1, 1, 1]);
        let triangle = LabeledGraph::from_parts(&[Label(1); 3], &[(0, 1), (1, 2), (0, 2)]);
        assert!(is_subgraph_of(&path, &triangle));
        assert!(find_induced_embeddings(&path, &triangle, 10).is_empty());
    }

    #[test]
    fn embedding_count_in_star() {
        // Star: center label 0, three leaves label 1.
        let star = LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(1), Label(1)],
            &[(0, 1), (0, 2), (0, 3)],
        );
        // Pattern: one center label 0 with two leaves label 1.
        let pattern = LabeledGraph::from_parts(&[Label(0), Label(1), Label(1)], &[(0, 1), (0, 2)]);
        let embs = find_embeddings(&pattern, &star, 100);
        // 3 choices for first leaf × 2 for second = 6 ordered embeddings.
        assert_eq!(embs.len(), 6);
        for e in &embs {
            assert_eq!(e[0], VertexId(0));
        }
    }

    #[test]
    fn embedding_respects_limit() {
        let star = LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(1), Label(1)],
            &[(0, 1), (0, 2), (0, 3)],
        );
        let pattern = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        assert_eq!(find_embeddings(&pattern, &star, 2).len(), 2);
        assert!(count_embeddings_at_least(&pattern, &star, 3));
        assert!(!count_embeddings_at_least(&pattern, &star, 4));
    }

    #[test]
    fn pattern_larger_than_host_never_embeds() {
        let big = labeled_path(&[1, 1, 1, 1]);
        let small = labeled_path(&[1, 1]);
        assert!(find_embeddings(&big, &small, 10).is_empty());
        assert!(!are_isomorphic(&big, &small));
    }

    #[test]
    fn disconnected_pattern_matches_across_components() {
        let host =
            LabeledGraph::from_parts(&[Label(1), Label(2), Label(1), Label(2)], &[(0, 1), (2, 3)]);
        let mut pattern = LabeledGraph::new();
        let a = pattern.add_vertex(Label(1));
        let _b = pattern.add_vertex(Label(1));
        let _ = a;
        let embs = find_embeddings(&pattern, &host, 100);
        // two label-1 vertices, ordered pairs without repetition = 2
        assert_eq!(embs.len(), 2);
    }

    #[test]
    fn empty_pattern_has_no_embeddings() {
        let host = labeled_path(&[1, 2]);
        assert!(find_embeddings(&LabeledGraph::new(), &host, 10).is_empty());
    }

    /// Sorts a flat row buffer into a canonical list of embeddings for
    /// set-comparison against the scratch matcher.
    fn sorted_rows(flat: &[VertexId], arity: usize) -> Vec<Vec<VertexId>> {
        let mut rows: Vec<Vec<VertexId>> = flat.chunks_exact(arity).map(|r| r.to_vec()).collect();
        rows.sort_unstable();
        rows
    }

    fn flatten(rows: &[Vec<VertexId>]) -> Vec<VertexId> {
        rows.iter().flat_map(|r| r.iter().copied()).collect()
    }

    #[test]
    fn extend_by_new_vertex_matches_scratch() {
        let host = LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(1), Label(2), Label(0), Label(1)],
            &[(0, 1), (0, 2), (1, 3), (4, 5), (5, 3)],
        );
        let parent = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let parent_rows = find_embeddings(&parent, &host, usize::MAX);
        let ext = EdgeExtension::NewVertex {
            anchor: VertexId(1),
            label: Label(2),
        };
        let child = apply_edge_extension(&parent, ext);
        let mut out = Vec::new();
        let outcome =
            extend_embeddings(&host, 2, &flatten(&parent_rows), ext, usize::MAX, &mut out);
        assert!(!outcome.truncated);
        let mut scratch = find_embeddings(&child, &host, usize::MAX);
        scratch.sort_unstable();
        assert_eq!(sorted_rows(&out, 3), scratch);
        assert_eq!(outcome.rows * 3, out.len());
    }

    #[test]
    fn extend_by_closing_edge_matches_scratch() {
        // Two triangles and one open path: the closing edge filters the path.
        let host = LabeledGraph::from_parts(
            &[
                Label(0),
                Label(1),
                Label(2),
                Label(0),
                Label(1),
                Label(2),
                Label(0),
                Label(1),
                Label(2),
            ],
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (3, 4),
                (4, 5),
                (3, 5),
                (6, 7),
                (7, 8),
            ],
        );
        let parent = LabeledGraph::from_parts(&[Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]);
        let parent_rows = find_embeddings(&parent, &host, usize::MAX);
        let ext = EdgeExtension::ClosingEdge {
            u: VertexId(0),
            v: VertexId(2),
        };
        let child = apply_edge_extension(&parent, ext);
        let mut out = Vec::new();
        let outcome =
            extend_embeddings(&host, 3, &flatten(&parent_rows), ext, usize::MAX, &mut out);
        assert!(!outcome.truncated);
        let mut scratch = find_embeddings(&child, &host, usize::MAX);
        scratch.sort_unstable();
        assert_eq!(sorted_rows(&out, 3), scratch);
        assert_eq!(outcome.rows, 2, "only the triangles survive");
    }

    #[test]
    fn extend_respects_limit_and_reports_truncation() {
        let star = LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(1), Label(1)],
            &[(0, 1), (0, 2), (0, 3)],
        );
        let parent = LabeledGraph::from_parts(&[Label(0)], &[]);
        let parent_rows = find_embeddings(&parent, &star, usize::MAX);
        let ext = EdgeExtension::NewVertex {
            anchor: VertexId(0),
            label: Label(1),
        };
        let mut out = Vec::new();
        let outcome = extend_embeddings(&star, 1, &flatten(&parent_rows), ext, 2, &mut out);
        assert_eq!(outcome.rows, 2);
        assert!(outcome.truncated);
        let mut out = Vec::new();
        let outcome = extend_embeddings(&star, 1, &flatten(&parent_rows), ext, 3, &mut out);
        assert_eq!(outcome.rows, 3);
        assert!(!outcome.truncated);
    }

    #[test]
    fn extend_with_empty_parent_set_is_empty() {
        let host = labeled_path(&[1, 2]);
        let mut out = Vec::new();
        let outcome = extend_embeddings(
            &host,
            2,
            &[],
            EdgeExtension::ClosingEdge {
                u: VertexId(0),
                v: VertexId(1),
            },
            usize::MAX,
            &mut out,
        );
        assert_eq!(outcome, ExtendOutcome::default());
        assert!(out.is_empty());
    }

    #[test]
    fn indexed_matcher_agrees_with_reference_in_order() {
        // A host with overlapping stars and a triangle: enough structure for
        // anchored, unanchored and induced paths to all fire.
        let host = LabeledGraph::from_parts(
            &[
                Label(0),
                Label(1),
                Label(1),
                Label(2),
                Label(0),
                Label(1),
                Label(2),
                Label(0),
                Label(1),
                Label(1),
            ],
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (4, 5),
                (4, 6),
                (5, 6),
                (7, 8),
                (7, 9),
                (8, 9),
                (3, 4),
                (6, 7),
            ],
        );
        let patterns = [
            LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]),
            LabeledGraph::from_parts(&[Label(0), Label(1), Label(1)], &[(0, 1), (0, 2)]),
            LabeledGraph::from_parts(&[Label(0), Label(1), Label(2)], &[(0, 1), (0, 2), (1, 2)]),
            LabeledGraph::from_parts(&[Label(1), Label(1)], &[]),
            LabeledGraph::from_parts(
                &[Label(0), Label(1), Label(2), Label(0)],
                &[(0, 1), (0, 2), (2, 3)],
            ),
        ];
        for pattern in &patterns {
            for limit in [1, 3, usize::MAX] {
                assert_eq!(
                    find_embeddings(pattern, &host, limit),
                    reference::find_embeddings(pattern, &host, limit),
                    "non-induced, limit {limit}"
                );
                assert_eq!(
                    find_induced_embeddings(pattern, &host, limit),
                    reference::find_induced_embeddings(pattern, &host, limit),
                    "induced, limit {limit}"
                );
            }
        }
    }
}
