//! Erdős–Rényi random graphs with uniformly random vertex labels.

use crate::graph::{LabeledGraph, VertexId};
use crate::label::Label;
use rand::Rng;

/// Generates a `G(n, p)` Erdős–Rényi graph with `n` vertices, independent edge
/// probability `p`, and labels drawn uniformly from `0..label_count`.
///
/// For the sparse regime used throughout the paper (`p = d/n` with small `d`)
/// the generator samples edges by geometric skipping, so the cost is
/// proportional to the number of edges rather than `n²`.
pub fn erdos_renyi_gnp<R: Rng>(rng: &mut R, n: usize, p: f64, label_count: u32) -> LabeledGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    assert!(label_count > 0, "need at least one label");
    let mut g = LabeledGraph::with_capacity(n);
    for _ in 0..n {
        g.add_vertex(Label(rng.gen_range(0..label_count)));
    }
    if n < 2 || p == 0.0 {
        return g;
    }
    if p >= 1.0 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                g.add_edge(VertexId(u), VertexId(v));
            }
        }
        return g;
    }
    // Geometric skipping over the n*(n-1)/2 candidate pairs.
    let log_q = (1.0 - p).ln();
    let total_pairs = n as u64 * (n as u64 - 1) / 2;
    let mut idx: u64 = 0;
    loop {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (r.ln() / log_q).floor() as u64;
        idx = idx.saturating_add(skip);
        if idx >= total_pairs {
            break;
        }
        let (u, v) = pair_from_index(idx, n as u64);
        g.add_edge(VertexId(u as u32), VertexId(v as u32));
        idx += 1;
    }
    g
}

/// Generates an Erdős–Rényi graph with a target *average degree* `d`
/// (the parameterization used by Table 1: `|V|`, `f` labels, average degree `d`).
pub fn erdos_renyi_average_degree<R: Rng>(
    rng: &mut R,
    n: usize,
    average_degree: f64,
    label_count: u32,
) -> LabeledGraph {
    assert!(average_degree >= 0.0);
    if n < 2 {
        return erdos_renyi_gnp(rng, n, 0.0, label_count);
    }
    let p = (average_degree / (n as f64 - 1.0)).min(1.0);
    erdos_renyi_gnp(rng, n, p, label_count)
}

/// Maps a linear index over the upper-triangular pair space to a `(u, v)` pair
/// with `u < v`.
fn pair_from_index(idx: u64, n: u64) -> (u64, u64) {
    // Row u contains (n - 1 - u) pairs. Walk rows; n is small enough (< 10^6)
    // that the loop is negligible next to edge insertion.
    let mut u = 0;
    let mut remaining = idx;
    loop {
        let row = n - 1 - u;
        if remaining < row {
            return (u, u + 1 + remaining);
        }
        remaining -= row;
        u += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn pair_index_covers_all_pairs() {
        let n = 6u64;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..(n * (n - 1) / 2) {
            let (u, v) = pair_from_index(idx, n);
            assert!(u < v && v < n);
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len() as u64, n * (n - 1) / 2);
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let empty = erdos_renyi_gnp(&mut rng, 50, 0.0, 3);
        assert_eq!(empty.edge_count(), 0);
        let full = erdos_renyi_gnp(&mut rng, 10, 1.0, 3);
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn gnp_edge_count_close_to_expectation() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let n = 2000;
        let p = 0.002;
        let g = erdos_renyi_gnp(&mut rng, n, p, 10);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.edge_count() as f64;
        assert!(
            (got - expected).abs() < expected * 0.2,
            "expected ≈{expected}, got {got}"
        );
    }

    #[test]
    fn average_degree_parameterization() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = erdos_renyi_average_degree(&mut rng, 3000, 4.0, 70);
        let avg = g.average_degree();
        assert!(
            (avg - 4.0).abs() < 0.5,
            "average degree {avg} too far from 4"
        );
    }

    #[test]
    fn labels_within_range_and_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g1 = erdos_renyi_gnp(&mut rng, 100, 0.05, 5);
        assert!(g1.labels().iter().all(|l| l.0 < 5));
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g2 = erdos_renyi_gnp(&mut rng, 100, 0.05, 5);
        assert_eq!(g1.edge_count(), g2.edge_count());
        assert_eq!(g1.labels(), g2.labels());
    }
}
