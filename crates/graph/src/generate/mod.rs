//! Synthetic graph generation.
//!
//! The paper's synthetic evaluation is built from two random-graph models —
//! Erdős–Rényi (`G(n, p)`-style random networks, Section 5.1.1) and
//! Barabási–Albert (scale-free networks) — into which a set of *large* and
//! *small* hand-made patterns is injected with a controlled number of
//! embeddings each (Tables 1 and 3). This module provides those three pieces:
//!
//! * [`erdos_renyi`] — background random graphs with a target average degree.
//! * [`mod@barabasi_albert`] — preferential-attachment scale-free graphs.
//! * [`inject`] — random connected pattern construction and pattern injection.

pub mod barabasi_albert;
pub mod erdos_renyi;
pub mod inject;

pub use barabasi_albert::barabasi_albert;
pub use erdos_renyi::{erdos_renyi_average_degree, erdos_renyi_gnp};
pub use inject::{inject_pattern, random_connected_pattern, random_labels, InjectionReport};
