//! Pattern construction and pattern injection.
//!
//! The synthetic evaluation (Tables 1–3) builds each dataset by generating a
//! background graph and *injecting* `m` copies ("embeddings") of each
//! hand-made large pattern and `n` copies of each small pattern into it. An
//! injected copy adds fresh vertices carrying the pattern's labels and edges,
//! then stitches the copy to the background with a couple of random bridge
//! edges so the pattern sits inside the network rather than floating beside it
//! (the paper notes that such interconnections are what turn 4 injected
//! 30-vertex patterns into 10 largest patterns of size 30 in Figures 4–8).

use crate::graph::{LabeledGraph, VertexId};
use crate::label::Label;
use rand::Rng;

/// What an injection did, so tests and experiments can verify the ground truth.
#[derive(Clone, Debug)]
pub struct InjectionReport {
    /// For every injected copy, the background-graph vertex ids it received.
    pub copies: Vec<Vec<VertexId>>,
    /// Bridge edges added between injected copies and the pre-existing graph.
    pub bridge_edges: Vec<(VertexId, VertexId)>,
}

/// Draws `count` labels uniformly from `0..label_count`.
pub fn random_labels<R: Rng>(rng: &mut R, count: usize, label_count: u32) -> Vec<Label> {
    (0..count)
        .map(|_| Label(rng.gen_range(0..label_count)))
        .collect()
}

/// Builds a random *connected* pattern with `vertices` vertices, labels drawn
/// from `0..label_count`, and roughly `extra_edges` additional edges beyond the
/// spanning tree (so `|E| ≈ vertices - 1 + extra_edges`).
///
/// The construction first wires a random spanning tree (guaranteeing
/// connectivity), then adds random non-tree edges.
pub fn random_connected_pattern<R: Rng>(
    rng: &mut R,
    vertices: usize,
    label_count: u32,
    extra_edges: usize,
) -> LabeledGraph {
    assert!(vertices >= 1);
    let mut g = LabeledGraph::with_capacity(vertices);
    for _ in 0..vertices {
        g.add_vertex(Label(rng.gen_range(0..label_count)));
    }
    // Random spanning tree: attach vertex i to a uniformly random earlier vertex.
    for i in 1..vertices as u32 {
        let j = rng.gen_range(0..i);
        g.add_edge(VertexId(i), VertexId(j));
    }
    let mut added = 0;
    let mut guard = 0;
    while added < extra_edges && guard < 50 * (extra_edges + 1) {
        guard += 1;
        let u = VertexId(rng.gen_range(0..vertices as u32));
        let v = VertexId(rng.gen_range(0..vertices as u32));
        if u != v && g.add_edge(u, v) {
            added += 1;
        }
    }
    g
}

/// Injects `copies` embeddings of `pattern` into `background`.
///
/// Each copy adds fresh vertices (one per pattern vertex, same labels) and all
/// pattern edges, then adds `bridges_per_copy` random edges from the copy to
/// pre-existing background vertices so the copy is attached to the network.
/// Bridge endpoints inside the copy are chosen uniformly; because the bridges
/// are random they do not (except with negligible probability) create extra
/// embeddings of the pattern.
pub fn inject_pattern<R: Rng>(
    rng: &mut R,
    background: &mut LabeledGraph,
    pattern: &LabeledGraph,
    copies: usize,
    bridges_per_copy: usize,
) -> InjectionReport {
    let original_n = background.vertex_count() as u32;
    let mut report = InjectionReport {
        copies: Vec::with_capacity(copies),
        bridge_edges: Vec::new(),
    };
    for _ in 0..copies {
        let offset = background.vertex_count() as u32;
        let mut copy_vertices = Vec::with_capacity(pattern.vertex_count());
        for v in pattern.vertices() {
            let new_v = background.add_vertex(pattern.label(v));
            copy_vertices.push(new_v);
        }
        for (u, v) in pattern.edges() {
            background.add_edge(VertexId(offset + u.0), VertexId(offset + v.0));
        }
        if original_n > 0 {
            for _ in 0..bridges_per_copy {
                let inside = copy_vertices[rng.gen_range(0..copy_vertices.len())];
                let outside = VertexId(rng.gen_range(0..original_n));
                if background.add_edge(inside, outside) {
                    report.bridge_edges.push((inside, outside));
                }
            }
        }
        report.copies.push(copy_vertices);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iso;
    use crate::traversal;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn random_pattern_is_connected_with_requested_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for vertices in [1usize, 2, 5, 30] {
            let p = random_connected_pattern(&mut rng, vertices, 10, 4);
            assert_eq!(p.vertex_count(), vertices);
            assert!(traversal::is_connected(&p));
            if vertices > 1 {
                assert!(p.edge_count() >= vertices - 1);
            }
        }
    }

    #[test]
    fn extra_edges_respected_approximately() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let p = random_connected_pattern(&mut rng, 20, 5, 10);
        assert!(p.edge_count() >= 19);
        assert!(p.edge_count() <= 29);
    }

    #[test]
    fn injection_adds_expected_vertices_and_edges() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut background = crate::generate::erdos_renyi_average_degree(&mut rng, 100, 2.0, 8);
        let before_v = background.vertex_count();
        let before_e = background.edge_count();
        let pattern = random_connected_pattern(&mut rng, 6, 8, 2);
        let report = inject_pattern(&mut rng, &mut background, &pattern, 3, 2);
        assert_eq!(background.vertex_count(), before_v + 3 * 6);
        assert!(background.edge_count() >= before_e + 3 * pattern.edge_count());
        assert_eq!(report.copies.len(), 3);
        assert!(report.bridge_edges.len() <= 6);
    }

    #[test]
    fn injected_copies_are_embeddings_of_the_pattern() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut background = crate::generate::erdos_renyi_average_degree(&mut rng, 60, 2.0, 50);
        // Use many labels so accidental embeddings are unlikely.
        let pattern = random_connected_pattern(&mut rng, 8, 50, 3);
        inject_pattern(&mut rng, &mut background, &pattern, 2, 2);
        let embeddings = iso::find_embeddings(&pattern, &background, 10);
        assert!(
            embeddings.len() >= 2,
            "expected at least the 2 injected embeddings, found {}",
            embeddings.len()
        );
    }

    #[test]
    fn injection_into_empty_background_adds_no_bridges() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut background = LabeledGraph::new();
        let pattern = random_connected_pattern(&mut rng, 4, 3, 0);
        let report = inject_pattern(&mut rng, &mut background, &pattern, 2, 3);
        assert!(report.bridge_edges.is_empty());
        assert_eq!(background.vertex_count(), 8);
    }

    #[test]
    fn random_labels_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let labels = random_labels(&mut rng, 100, 4);
        assert_eq!(labels.len(), 100);
        assert!(labels.iter().all(|l| l.0 < 4));
    }
}
