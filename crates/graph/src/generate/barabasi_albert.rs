//! Barabási–Albert preferential-attachment (scale-free) graphs.
//!
//! Used for the scale-free experiments (Figures 13 and 17): high-degree hub
//! vertices produce an explosion of small frequent patterns, which is exactly
//! the regime where the paper shows the spider count growing sharply.

use crate::graph::{LabeledGraph, VertexId};
use crate::label::Label;
use rand::Rng;

/// Generates a Barabási–Albert graph: starts from a small clique of
/// `m_attach` vertices, then each new vertex attaches to `m_attach` existing
/// vertices chosen with probability proportional to their degree. Labels are
/// uniform over `0..label_count`.
pub fn barabasi_albert<R: Rng>(
    rng: &mut R,
    n: usize,
    m_attach: usize,
    label_count: u32,
) -> LabeledGraph {
    assert!(label_count > 0, "need at least one label");
    assert!(m_attach >= 1, "each new vertex must attach at least once");
    let mut g = LabeledGraph::with_capacity(n);
    if n == 0 {
        return g;
    }
    let seed_size = (m_attach + 1).min(n);
    for _ in 0..seed_size {
        g.add_vertex(Label(rng.gen_range(0..label_count)));
    }
    // Seed clique so every seed vertex has nonzero degree.
    for u in 0..seed_size as u32 {
        for v in (u + 1)..seed_size as u32 {
            g.add_edge(VertexId(u), VertexId(v));
        }
    }
    // repeated-endpoint list: vertex v appears deg(v) times; sampling uniformly
    // from it implements preferential attachment.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m_attach);
    for (u, v) in g.edges() {
        endpoints.push(u);
        endpoints.push(v);
    }
    for _ in seed_size..n {
        let new_v = g.add_vertex(Label(rng.gen_range(0..label_count)));
        let mut targets: Vec<VertexId> = Vec::with_capacity(m_attach);
        let mut guard = 0;
        while targets.len() < m_attach && guard < 50 * m_attach {
            guard += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != new_v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for t in targets {
            if g.add_edge(new_v, t) {
                endpoints.push(new_v);
                endpoints.push(t);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn edge_count_matches_model() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 500;
        let m = 2;
        let g = barabasi_albert(&mut rng, n, m, 20);
        assert_eq!(g.vertex_count(), n);
        // seed clique of m+1=3 vertices has 3 edges, then (n-3) * m new edges
        // (a few may be dropped by the guard, allow slack).
        let expected = 3 + (n - 3) * m;
        assert!(g.edge_count() <= expected);
        assert!(g.edge_count() as f64 > expected as f64 * 0.95);
    }

    #[test]
    fn produces_skewed_degree_distribution() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = barabasi_albert(&mut rng, 2000, 2, 100);
        let max = g.max_degree() as f64;
        let avg = g.average_degree();
        assert!(
            max > 5.0 * avg,
            "scale-free graph should have hubs: max {max}, avg {avg}"
        );
    }

    #[test]
    fn graph_is_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = barabasi_albert(&mut rng, 300, 3, 10);
        assert!(crate::traversal::is_connected(&g));
    }

    #[test]
    fn small_n_edge_cases() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = barabasi_albert(&mut rng, 0, 2, 5);
        assert_eq!(g.vertex_count(), 0);
        let g = barabasi_albert(&mut rng, 2, 3, 5);
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }
}
