//! Graph-transaction databases.
//!
//! SpiderMine targets the single-graph setting but "can be adapted to
//! graph-transaction setting with no difficulty" (Section 2); Figures 14–15
//! evaluate that adaptation against ORIGAMI. A [`GraphDatabase`] is simply an
//! ordered collection of labeled graphs; transaction support of a pattern is
//! the number of member graphs containing at least one embedding.

use crate::graph::LabeledGraph;
use crate::iso;

/// An ordered collection of labeled graphs (the "graph-transaction" setting).
#[derive(Clone, Debug, Default)]
pub struct GraphDatabase {
    graphs: Vec<LabeledGraph>,
}

impl GraphDatabase {
    /// Creates a database from a list of graphs.
    pub fn new(graphs: Vec<LabeledGraph>) -> Self {
        Self { graphs }
    }

    /// Adds a graph to the database.
    pub fn push(&mut self, graph: LabeledGraph) {
        self.graphs.push(graph);
    }

    /// The member graphs, in insertion order.
    pub fn graphs(&self) -> &[LabeledGraph] {
        &self.graphs
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True if the database holds no graphs.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Transaction support of `pattern`: the number of member graphs that
    /// contain at least one embedding of it.
    pub fn support(&self, pattern: &LabeledGraph) -> usize {
        self.graphs
            .iter()
            .filter(|g| iso::is_subgraph_of(pattern, g))
            .count()
    }

    /// Total vertex count across all transactions.
    pub fn total_vertices(&self) -> usize {
        self.graphs.iter().map(LabeledGraph::vertex_count).sum()
    }

    /// Total edge count across all transactions.
    pub fn total_edges(&self) -> usize {
        self.graphs.iter().map(LabeledGraph::edge_count).sum()
    }

    /// Collapses the database into one disconnected graph whose components are
    /// the transactions, remembering which component each vertex came from.
    ///
    /// This is how the SpiderMine transaction adaptation reuses the
    /// single-graph machinery: mine the disjoint union, then count support per
    /// transaction rather than per embedding.
    pub fn to_union_graph(&self) -> (LabeledGraph, Vec<usize>) {
        let mut union = LabeledGraph::with_capacity(self.total_vertices());
        let mut owner = Vec::with_capacity(self.total_vertices());
        for (tid, g) in self.graphs.iter().enumerate() {
            let offset = union.vertex_count() as u32;
            for v in g.vertices() {
                union.add_vertex(g.label(v));
                owner.push(tid);
            }
            for (u, v) in g.edges() {
                union.add_edge((u.0 + offset).into(), (v.0 + offset).into());
            }
        }
        (union, owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    fn tiny_db() -> GraphDatabase {
        let g1 = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let g2 = LabeledGraph::from_parts(&[Label(0), Label(1), Label(1)], &[(0, 1), (0, 2)]);
        let g3 = LabeledGraph::from_parts(&[Label(2)], &[]);
        GraphDatabase::new(vec![g1, g2, g3])
    }

    #[test]
    fn support_counts_transactions_not_embeddings() {
        let db = tiny_db();
        let pattern = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        // g2 contains two embeddings but counts once.
        assert_eq!(db.support(&pattern), 2);
    }

    #[test]
    fn support_of_absent_pattern_is_zero() {
        let db = tiny_db();
        let pattern = LabeledGraph::from_parts(&[Label(7)], &[]);
        assert_eq!(db.support(&pattern), 0);
    }

    #[test]
    fn union_graph_preserves_sizes_and_ownership() {
        let db = tiny_db();
        let (union, owner) = db.to_union_graph();
        assert_eq!(union.vertex_count(), db.total_vertices());
        assert_eq!(union.edge_count(), db.total_edges());
        assert_eq!(owner.len(), union.vertex_count());
        assert_eq!(owner[0], 0);
        assert_eq!(owner[2], 1);
        assert_eq!(*owner.last().expect("non-empty"), 2);
    }

    #[test]
    fn push_and_len() {
        let mut db = GraphDatabase::default();
        assert!(db.is_empty());
        db.push(LabeledGraph::from_parts(&[Label(0)], &[]));
        assert_eq!(db.len(), 1);
        assert!(!db.is_empty());
    }
}
