//! Labeled-graph substrate for the SpiderMine reproduction.
//!
//! This crate provides everything the miners in the workspace operate on:
//!
//! * [`LabeledGraph`] — an undirected, simple, vertex-labeled graph stored as a
//!   compact adjacency list, the "single massive network" of the paper.
//! * [`csr`] — the frozen CSR view of a graph (flat adjacency, label index,
//!   neighbor-label histograms) that the matcher and the spider miner read.
//! * [`label`] — label interning so that callers can use human-readable label
//!   names while the miners work with dense `u32` label ids.
//! * [`traversal`] — BFS, bounded BFS, shortest distances, eccentricity,
//!   diameter/radius and connected components.
//! * [`subgraph`] — induced and edge-set subgraph extraction with vertex maps.
//! * [`iso`] — label-aware VF2 graph isomorphism and subgraph-isomorphism
//!   (embedding enumeration), the correctness oracle behind every support count.
//! * [`pattern_store`] — the arena of pattern graphs (flat vertex/edge pools,
//!   [`PatternId`] handles, copy-on-grow) behind the engine's pattern storage.
//! * [`signature`] — cheap isomorphism-invariant signatures used to avoid VF2
//!   calls (the paper's spider-set idea lives one level up, in `spidermine`).
//! * [`generate`] — Erdős–Rényi and Barabási–Albert generators plus pattern
//!   injection, reproducing the synthetic data of the paper's evaluation.
//! * [`transaction`] — a graph-transaction database for the Figures 14–15
//!   comparison against ORIGAMI.
//! * [`io`] — a small text format for persisting graphs and patterns, plus
//!   the binary snapshot formats (v1 eager, v2 mmap-backed zero-copy).
//! * [`shared`] — reference-counted byte regions and typed slices
//!   ([`SharedBytes`], [`ArcSlice`]) that let frozen graphs borrow snapshot
//!   storage (a memory mapping or a read buffer) without copying.

pub mod csr;
pub mod generate;
pub mod graph;
pub mod io;
pub mod iso;
pub mod label;
pub mod pattern_store;
pub mod shared;
pub mod signature;
pub mod stats;
pub mod subgraph;
pub mod transaction;
pub mod traversal;

pub use csr::CsrIndex;
pub use graph::{LabeledGraph, VertexId};
pub use label::{Label, LabelInterner};
pub use pattern_store::{PatternId, PatternStore, PatternView};
pub use shared::{ArcSlice, SharedBytes};
pub use stats::GraphStats;
pub use transaction::GraphDatabase;
