//! Cheap isomorphism-invariant signatures.
//!
//! The paper's spider-set representation (Section 4.2.2) prunes graph
//! isomorphism tests: isomorphic graphs necessarily have equal spider-sets, so
//! unequal spider-sets mean "cannot be isomorphic — skip VF2". This module
//! provides the generic building block: a 1-round Weisfeiler–Leman style
//! neighborhood refinement hash. The radius-r spider-set itself is assembled in
//! the `spidermine` crate on top of [`neighborhood_signature`].

use crate::graph::{LabeledGraph, VertexId};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A stable 64-bit FNV-1a hasher.
///
/// Unlike [`DefaultHasher`] (whose output is only guaranteed stable within
/// one process), FNV-1a over a fixed byte encoding produces the same value
/// across processes, platforms and compiler versions. That stability is what
/// lets [`graph_fingerprint`] values be persisted inside snapshot files and
/// used as cache keys that survive a service restart.
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self {
            state: Self::OFFSET_BASIS,
        }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Feeds one `u32` in little-endian byte order.
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds one `u64` in little-endian byte order.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// The accumulated hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Content fingerprint of a graph: a [`StableHasher`] digest over the vertex
/// labels and the frozen CSR adjacency (per-vertex sorted neighbor rows).
///
/// Two graphs have equal fingerprints exactly when they are identical as
/// *labeled vertex-id-ordered* structures (up to hash collisions) — this is a
/// content hash, **not** an isomorphism invariant: renumbering vertices
/// changes the fingerprint. The value is stable across processes and is
/// persisted in the snapshot header (`io::save_snapshot`), which is what lets
/// the service layer key its result cache by `(fingerprint, request)` and
/// trust the key across restarts.
pub fn graph_fingerprint(graph: &LabeledGraph) -> u64 {
    let csr = graph.csr();
    let mut h = StableHasher::new();
    h.write_bytes(b"spidermine-graph-fingerprint-v1");
    h.write_u32(graph.vertex_count() as u32);
    h.write_u32(graph.edge_count() as u32);
    for l in graph.labels() {
        h.write_u32(l.0);
    }
    // The CSR arrays, row by row: degree then sorted neighbor ids — exactly
    // the information content of the offsets + neighbors sections of the
    // snapshot format.
    for v in graph.vertices() {
        let row = csr.neighbors(v);
        h.write_u32(row.len() as u32);
        for &u in row {
            h.write_u32(u.0);
        }
    }
    h.finish()
}

/// A per-vertex signature describing the vertex's label together with the
/// sorted multiset of its neighbors' labels — exactly the information content
/// of a radius-1 star spider rooted at the vertex.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexSignature {
    /// Label of the vertex itself.
    pub label: u32,
    /// Sorted labels of its neighbors.
    pub neighbor_labels: Vec<u32>,
}

/// Computes the radius-1 signature of a single vertex.
pub fn vertex_signature(graph: &LabeledGraph, v: VertexId) -> VertexSignature {
    let mut neighbor_labels: Vec<u32> = graph
        .neighbors(v)
        .iter()
        .map(|&u| graph.label(u).0)
        .collect();
    neighbor_labels.sort_unstable();
    VertexSignature {
        label: graph.label(v).0,
        neighbor_labels,
    }
}

/// The sorted multiset of all vertex signatures of a graph.
///
/// By the same argument as the paper's Theorem 2, isomorphic graphs have equal
/// neighborhood signatures; the converse does not hold in general.
pub fn neighborhood_signature(graph: &LabeledGraph) -> Vec<VertexSignature> {
    let mut sigs: Vec<VertexSignature> = graph
        .vertices()
        .map(|v| vertex_signature(graph, v))
        .collect();
    sigs.sort();
    sigs
}

/// A compact invariant: `(|V|, |E|, hash of the sorted label multiset, hash of
/// the neighborhood signature)`. Two graphs with different invariants cannot be
/// isomorphic. Collisions are possible but only cost an extra VF2 call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct InvariantSignature {
    /// Vertex count.
    pub vertices: u32,
    /// Edge count.
    pub edges: u32,
    /// Hash over the sorted vertex-label multiset.
    pub label_hash: u64,
    /// Hash over the sorted radius-1 neighborhood signature multiset.
    pub neighborhood_hash: u64,
}

/// Computes the [`InvariantSignature`] of a graph.
pub fn invariant_signature(graph: &LabeledGraph) -> InvariantSignature {
    let mut labels: Vec<u32> = graph.labels().iter().map(|l| l.0).collect();
    labels.sort_unstable();
    let mut h = DefaultHasher::new();
    labels.hash(&mut h);
    let label_hash = h.finish();

    let mut h = DefaultHasher::new();
    neighborhood_signature(graph).hash(&mut h);
    let neighborhood_hash = h.finish();

    InvariantSignature {
        vertices: graph.vertex_count() as u32,
        edges: graph.edge_count() as u32,
        label_hash,
        neighborhood_hash,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    #[test]
    fn stable_hasher_matches_known_fnv_vectors() {
        // FNV-1a 64 test vectors: "" and "a".
        assert_eq!(StableHasher::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = StableHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn fingerprint_is_content_sensitive() {
        let a = LabeledGraph::from_parts(&[Label(1), Label(2), Label(3)], &[(0, 1), (1, 2)]);
        let same = LabeledGraph::from_parts(&[Label(1), Label(2), Label(3)], &[(0, 1), (1, 2)]);
        assert_eq!(graph_fingerprint(&a), graph_fingerprint(&same));
        // A label change, an edge change, and a vertex renumbering all move it.
        let relabel = LabeledGraph::from_parts(&[Label(9), Label(2), Label(3)], &[(0, 1), (1, 2)]);
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&relabel));
        let rewire = LabeledGraph::from_parts(&[Label(1), Label(2), Label(3)], &[(0, 1), (0, 2)]);
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&rewire));
        let renumber = LabeledGraph::from_parts(&[Label(3), Label(2), Label(1)], &[(2, 1), (1, 0)]);
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&renumber));
    }

    #[test]
    fn isomorphic_graphs_share_signature() {
        let a = LabeledGraph::from_parts(&[Label(1), Label(2), Label(3)], &[(0, 1), (1, 2)]);
        let b = LabeledGraph::from_parts(&[Label(3), Label(2), Label(1)], &[(0, 1), (1, 2)]);
        assert_eq!(invariant_signature(&a), invariant_signature(&b));
        assert_eq!(neighborhood_signature(&a), neighborhood_signature(&b));
    }

    #[test]
    fn structurally_different_graphs_differ() {
        let path = LabeledGraph::from_parts(&[Label(1); 3], &[(0, 1), (1, 2)]);
        let triangle = LabeledGraph::from_parts(&[Label(1); 3], &[(0, 1), (1, 2), (0, 2)]);
        assert_ne!(invariant_signature(&path), invariant_signature(&triangle));
    }

    #[test]
    fn label_swap_changes_signature() {
        let a = LabeledGraph::from_parts(&[Label(1), Label(1), Label(2)], &[(0, 1), (1, 2)]);
        let b = LabeledGraph::from_parts(&[Label(1), Label(2), Label(2)], &[(0, 1), (1, 2)]);
        assert_ne!(invariant_signature(&a), invariant_signature(&b));
    }

    #[test]
    fn vertex_signature_reflects_neighborhood() {
        let g = LabeledGraph::from_parts(&[Label(0), Label(5), Label(7)], &[(0, 1), (0, 2)]);
        let sig = vertex_signature(&g, VertexId(0));
        assert_eq!(sig.label, 0);
        assert_eq!(sig.neighbor_labels, vec![5, 7]);
    }

    #[test]
    fn figure3_counterexample_radius1_collision() {
        // The paper's Figure 3(II) point: two non-isomorphic graphs can share
        // the radius-1 signature. A 6-cycle and two triangles (all same label)
        // have identical radius-1 neighborhoods but different structure.
        let cycle6 = LabeledGraph::from_parts(
            &[Label(1); 6],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        );
        let two_triangles = LabeledGraph::from_parts(
            &[Label(1); 6],
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        );
        assert_eq!(
            neighborhood_signature(&cycle6),
            neighborhood_signature(&two_triangles)
        );
        assert!(!crate::iso::are_isomorphic(&cycle6, &two_triangles));
    }
}
