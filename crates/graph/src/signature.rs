//! Cheap isomorphism-invariant signatures.
//!
//! The paper's spider-set representation (Section 4.2.2) prunes graph
//! isomorphism tests: isomorphic graphs necessarily have equal spider-sets, so
//! unequal spider-sets mean "cannot be isomorphic — skip VF2". This module
//! provides the generic building block: a 1-round Weisfeiler–Leman style
//! neighborhood refinement hash. The radius-r spider-set itself is assembled in
//! the `spidermine` crate on top of [`neighborhood_signature`].

use crate::graph::{LabeledGraph, VertexId};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A per-vertex signature describing the vertex's label together with the
/// sorted multiset of its neighbors' labels — exactly the information content
/// of a radius-1 star spider rooted at the vertex.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexSignature {
    /// Label of the vertex itself.
    pub label: u32,
    /// Sorted labels of its neighbors.
    pub neighbor_labels: Vec<u32>,
}

/// Computes the radius-1 signature of a single vertex.
pub fn vertex_signature(graph: &LabeledGraph, v: VertexId) -> VertexSignature {
    let mut neighbor_labels: Vec<u32> = graph
        .neighbors(v)
        .iter()
        .map(|&u| graph.label(u).0)
        .collect();
    neighbor_labels.sort_unstable();
    VertexSignature {
        label: graph.label(v).0,
        neighbor_labels,
    }
}

/// The sorted multiset of all vertex signatures of a graph.
///
/// By the same argument as the paper's Theorem 2, isomorphic graphs have equal
/// neighborhood signatures; the converse does not hold in general.
pub fn neighborhood_signature(graph: &LabeledGraph) -> Vec<VertexSignature> {
    let mut sigs: Vec<VertexSignature> = graph
        .vertices()
        .map(|v| vertex_signature(graph, v))
        .collect();
    sigs.sort();
    sigs
}

/// A compact invariant: `(|V|, |E|, hash of the sorted label multiset, hash of
/// the neighborhood signature)`. Two graphs with different invariants cannot be
/// isomorphic. Collisions are possible but only cost an extra VF2 call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct InvariantSignature {
    /// Vertex count.
    pub vertices: u32,
    /// Edge count.
    pub edges: u32,
    /// Hash over the sorted vertex-label multiset.
    pub label_hash: u64,
    /// Hash over the sorted radius-1 neighborhood signature multiset.
    pub neighborhood_hash: u64,
}

/// Computes the [`InvariantSignature`] of a graph.
pub fn invariant_signature(graph: &LabeledGraph) -> InvariantSignature {
    let mut labels: Vec<u32> = graph.labels().iter().map(|l| l.0).collect();
    labels.sort_unstable();
    let mut h = DefaultHasher::new();
    labels.hash(&mut h);
    let label_hash = h.finish();

    let mut h = DefaultHasher::new();
    neighborhood_signature(graph).hash(&mut h);
    let neighborhood_hash = h.finish();

    InvariantSignature {
        vertices: graph.vertex_count() as u32,
        edges: graph.edge_count() as u32,
        label_hash,
        neighborhood_hash,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    #[test]
    fn isomorphic_graphs_share_signature() {
        let a = LabeledGraph::from_parts(&[Label(1), Label(2), Label(3)], &[(0, 1), (1, 2)]);
        let b = LabeledGraph::from_parts(&[Label(3), Label(2), Label(1)], &[(0, 1), (1, 2)]);
        assert_eq!(invariant_signature(&a), invariant_signature(&b));
        assert_eq!(neighborhood_signature(&a), neighborhood_signature(&b));
    }

    #[test]
    fn structurally_different_graphs_differ() {
        let path = LabeledGraph::from_parts(&[Label(1); 3], &[(0, 1), (1, 2)]);
        let triangle = LabeledGraph::from_parts(&[Label(1); 3], &[(0, 1), (1, 2), (0, 2)]);
        assert_ne!(invariant_signature(&path), invariant_signature(&triangle));
    }

    #[test]
    fn label_swap_changes_signature() {
        let a = LabeledGraph::from_parts(&[Label(1), Label(1), Label(2)], &[(0, 1), (1, 2)]);
        let b = LabeledGraph::from_parts(&[Label(1), Label(2), Label(2)], &[(0, 1), (1, 2)]);
        assert_ne!(invariant_signature(&a), invariant_signature(&b));
    }

    #[test]
    fn vertex_signature_reflects_neighborhood() {
        let g = LabeledGraph::from_parts(&[Label(0), Label(5), Label(7)], &[(0, 1), (0, 2)]);
        let sig = vertex_signature(&g, VertexId(0));
        assert_eq!(sig.label, 0);
        assert_eq!(sig.neighbor_labels, vec![5, 7]);
    }

    #[test]
    fn figure3_counterexample_radius1_collision() {
        // The paper's Figure 3(II) point: two non-isomorphic graphs can share
        // the radius-1 signature. A 6-cycle and two triangles (all same label)
        // have identical radius-1 neighborhoods but different structure.
        let cycle6 = LabeledGraph::from_parts(
            &[Label(1); 6],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        );
        let two_triangles = LabeledGraph::from_parts(
            &[Label(1); 6],
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        );
        assert_eq!(
            neighborhood_signature(&cycle6),
            neighborhood_signature(&two_triangles)
        );
        assert!(!crate::iso::are_isomorphic(&cycle6, &two_triangles));
    }
}
