//! A small line-oriented text format for graphs and transaction databases.
//!
//! Format (one record per line):
//!
//! ```text
//! # comment
//! t <graph-index>          -- starts a new graph (only needed for databases)
//! v <vertex-id> <label>    -- vertex ids must be dense and in order
//! e <src> <dst>            -- undirected edge
//! ```
//!
//! This mirrors the de-facto standard format used by gSpan-family tools, which
//! makes it easy to feed externally generated data into the miners.

use crate::graph::{LabeledGraph, VertexId};
use crate::label::Label;
use crate::transaction::GraphDatabase;
use std::fmt::Write as _;

/// Errors produced while parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line did not match any known record type.
    UnknownRecord(String),
    /// A numeric field failed to parse.
    BadNumber(String),
    /// A vertex id was out of order or referenced before definition.
    BadVertex(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnknownRecord(l) => write!(f, "unknown record: {l}"),
            ParseError::BadNumber(l) => write!(f, "bad number in: {l}"),
            ParseError::BadVertex(l) => write!(f, "bad vertex reference in: {l}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes a single graph.
pub fn write_graph(graph: &LabeledGraph) -> String {
    let mut out = String::new();
    for v in graph.vertices() {
        writeln!(out, "v {} {}", v.0, graph.label(v).0).expect("write to string");
    }
    for (u, v) in graph.edges() {
        writeln!(out, "e {} {}", u.0, v.0).expect("write to string");
    }
    out
}

/// Serializes a transaction database (multiple graphs).
pub fn write_database(db: &GraphDatabase) -> String {
    let mut out = String::new();
    for (i, g) in db.graphs().iter().enumerate() {
        writeln!(out, "t {i}").expect("write to string");
        out.push_str(&write_graph(g));
    }
    out
}

/// Parses a single graph. `t` records are rejected here; use
/// [`read_database`] for multi-graph input.
pub fn read_graph(text: &str) -> Result<LabeledGraph, ParseError> {
    let mut g = LabeledGraph::new();
    for line in text.lines() {
        parse_line(line, &mut g, false)?;
    }
    Ok(g)
}

/// Parses a transaction database.
pub fn read_database(text: &str) -> Result<GraphDatabase, ParseError> {
    let mut graphs: Vec<LabeledGraph> = Vec::new();
    let mut current: Option<LabeledGraph> = None;
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if trimmed.starts_with('t') {
            if let Some(g) = current.take() {
                graphs.push(g);
            }
            current = Some(LabeledGraph::new());
            continue;
        }
        let g = current.get_or_insert_with(LabeledGraph::new);
        parse_line(trimmed, g, true)?;
    }
    if let Some(g) = current.take() {
        graphs.push(g);
    }
    Ok(GraphDatabase::new(graphs))
}

fn parse_line(line: &str, g: &mut LabeledGraph, _in_db: bool) -> Result<(), ParseError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(());
    }
    let mut parts = trimmed.split_whitespace();
    match parts.next() {
        Some("v") => {
            let id: u32 = parse_num(parts.next(), trimmed)?;
            let label: u32 = parse_num(parts.next(), trimmed)?;
            if id as usize != g.vertex_count() {
                return Err(ParseError::BadVertex(trimmed.to_owned()));
            }
            g.add_vertex(Label(label));
            Ok(())
        }
        Some("e") => {
            let u: u32 = parse_num(parts.next(), trimmed)?;
            let v: u32 = parse_num(parts.next(), trimmed)?;
            if u as usize >= g.vertex_count() || v as usize >= g.vertex_count() {
                return Err(ParseError::BadVertex(trimmed.to_owned()));
            }
            g.add_edge(VertexId(u), VertexId(v));
            Ok(())
        }
        _ => Err(ParseError::UnknownRecord(trimmed.to_owned())),
    }
}

fn parse_num(field: Option<&str>, line: &str) -> Result<u32, ParseError> {
    field
        .ok_or_else(|| ParseError::BadNumber(line.to_owned()))?
        .parse()
        .map_err(|_| ParseError::BadNumber(line.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_roundtrip() {
        let g = LabeledGraph::from_parts(&[Label(3), Label(4), Label(3)], &[(0, 1), (1, 2)]);
        let text = write_graph(&g);
        let back = read_graph(&text).expect("parse");
        assert_eq!(back.vertex_count(), 3);
        assert_eq!(back.edge_count(), 2);
        assert_eq!(back.label(VertexId(0)), Label(3));
        assert!(back.has_edge(VertexId(1), VertexId(2)));
    }

    #[test]
    fn database_roundtrip() {
        let g1 = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let g2 = LabeledGraph::from_parts(&[Label(2)], &[]);
        let db = GraphDatabase::new(vec![g1, g2]);
        let text = write_database(&db);
        let back = read_database(&text).expect("parse");
        assert_eq!(back.len(), 2);
        assert_eq!(back.graphs()[0].edge_count(), 1);
        assert_eq!(back.graphs()[1].vertex_count(), 1);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hello\n\nv 0 7\nv 1 8\ne 0 1\n";
        let g = read_graph(text).expect("parse");
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn unknown_record_is_an_error() {
        assert!(matches!(
            read_graph("x 1 2"),
            Err(ParseError::UnknownRecord(_))
        ));
    }

    #[test]
    fn out_of_order_vertex_is_an_error() {
        assert!(matches!(read_graph("v 5 0"), Err(ParseError::BadVertex(_))));
    }

    #[test]
    fn edge_to_unknown_vertex_is_an_error() {
        assert!(matches!(
            read_graph("v 0 1\ne 0 9"),
            Err(ParseError::BadVertex(_))
        ));
    }

    #[test]
    fn bad_number_is_an_error() {
        assert!(matches!(
            read_graph("v zero 1"),
            Err(ParseError::BadNumber(_))
        ));
        assert!(matches!(read_graph("v 0"), Err(ParseError::BadNumber(_))));
    }
}
