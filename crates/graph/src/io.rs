//! Graph persistence: a line-oriented text format and a versioned binary
//! snapshot format.
//!
//! # Text format
//!
//! One record per line:
//!
//! ```text
//! # comment
//! t <graph-index>          -- starts a new graph (only needed for databases)
//! v <vertex-id> <label>    -- vertex ids must be dense and in order
//! e <src> <dst>            -- undirected edge
//! ```
//!
//! This mirrors the de-facto standard format used by gSpan-family tools, which
//! makes it easy to feed externally generated data into the miners.
//!
//! # Binary snapshot format
//!
//! [`snapshot_bytes`] / [`graph_from_snapshot`] (and the file-level
//! [`save_snapshot`] / [`load_snapshot`]) persist a [`LabeledGraph`] in its
//! frozen CSR shape, so a service restart reloads flat arrays instead of
//! replaying edge insertions and re-sorting adjacency. All integers are
//! little-endian:
//!
//! ```text
//! offset  size  field
//!      0     8  magic "SPDRSNAP"
//!      8     4  format version (currently 1)
//!     12     8  FNV-1a checksum over the payload (everything after byte 28)
//!     20     8  graph fingerprint (signature::graph_fingerprint)
//!     28     4  vertex count n                 ┐
//!             4  edge count e                  │
//!        n * 4  labels section                 │ payload
//!    (n+1) * 4  CSR offsets section            │ (checksummed)
//!       2e * 4  CSR neighbors section          │
//!     variable  label-index section:           │
//!               distinct-label count d, then   │
//!               d × (label, vertex count)      ┘
//! ```
//!
//! The writer is deterministic, so save → load → re-save round-trips
//! byte-identically; the reader validates magic, version, checksum, full
//! structural well-formedness (monotone offsets, sorted symmetric rows, no
//! self-loops, label index consistent with the labels section) and the stored
//! fingerprint, reporting any violation as a typed [`SnapshotError`] — a
//! truncated or bit-flipped file never panics.

use crate::graph::{LabeledGraph, VertexId};
use crate::label::Label;
use crate::signature::{graph_fingerprint, StableHasher};
use crate::transaction::GraphDatabase;
use std::fmt::Write as _;
use std::path::Path;

/// Errors produced while parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line did not match any known record type.
    UnknownRecord(String),
    /// A numeric field failed to parse.
    BadNumber(String),
    /// A vertex id was out of order or referenced before definition.
    BadVertex(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnknownRecord(l) => write!(f, "unknown record: {l}"),
            ParseError::BadNumber(l) => write!(f, "bad number in: {l}"),
            ParseError::BadVertex(l) => write!(f, "bad vertex reference in: {l}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes a single graph.
pub fn write_graph(graph: &LabeledGraph) -> String {
    let mut out = String::new();
    for v in graph.vertices() {
        writeln!(out, "v {} {}", v.0, graph.label(v).0).expect("write to string");
    }
    for (u, v) in graph.edges() {
        writeln!(out, "e {} {}", u.0, v.0).expect("write to string");
    }
    out
}

/// Serializes a transaction database (multiple graphs).
pub fn write_database(db: &GraphDatabase) -> String {
    let mut out = String::new();
    for (i, g) in db.graphs().iter().enumerate() {
        writeln!(out, "t {i}").expect("write to string");
        out.push_str(&write_graph(g));
    }
    out
}

/// Parses a single graph. `t` records are rejected here; use
/// [`read_database`] for multi-graph input.
pub fn read_graph(text: &str) -> Result<LabeledGraph, ParseError> {
    let mut g = LabeledGraph::new();
    for line in text.lines() {
        parse_line(line, &mut g, false)?;
    }
    Ok(g)
}

/// Parses a transaction database.
pub fn read_database(text: &str) -> Result<GraphDatabase, ParseError> {
    let mut graphs: Vec<LabeledGraph> = Vec::new();
    let mut current: Option<LabeledGraph> = None;
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if trimmed.starts_with('t') {
            if let Some(g) = current.take() {
                graphs.push(g);
            }
            current = Some(LabeledGraph::new());
            continue;
        }
        let g = current.get_or_insert_with(LabeledGraph::new);
        parse_line(trimmed, g, true)?;
    }
    if let Some(g) = current.take() {
        graphs.push(g);
    }
    Ok(GraphDatabase::new(graphs))
}

fn parse_line(line: &str, g: &mut LabeledGraph, _in_db: bool) -> Result<(), ParseError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(());
    }
    let mut parts = trimmed.split_whitespace();
    match parts.next() {
        Some("v") => {
            let id: u32 = parse_num(parts.next(), trimmed)?;
            let label: u32 = parse_num(parts.next(), trimmed)?;
            if id as usize != g.vertex_count() {
                return Err(ParseError::BadVertex(trimmed.to_owned()));
            }
            g.add_vertex(Label(label));
            Ok(())
        }
        Some("e") => {
            let u: u32 = parse_num(parts.next(), trimmed)?;
            let v: u32 = parse_num(parts.next(), trimmed)?;
            if u as usize >= g.vertex_count() || v as usize >= g.vertex_count() {
                return Err(ParseError::BadVertex(trimmed.to_owned()));
            }
            g.add_edge(VertexId(u), VertexId(v));
            Ok(())
        }
        _ => Err(ParseError::UnknownRecord(trimmed.to_owned())),
    }
}

fn parse_num(field: Option<&str>, line: &str) -> Result<u32, ParseError> {
    field
        .ok_or_else(|| ParseError::BadNumber(line.to_owned()))?
        .parse()
        .map_err(|_| ParseError::BadNumber(line.to_owned()))
}

// ---------------------------------------------------------------------------
// Binary snapshot format
// ---------------------------------------------------------------------------

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SPDRSNAP";

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Header length: magic + version + checksum + fingerprint.
const SNAPSHOT_HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// Everything that can go wrong reading (or persisting) a binary snapshot.
///
/// Corruption is always reported as a typed error, never a panic: a truncated
/// file surfaces as [`SnapshotError::Truncated`], a bit flip as
/// [`SnapshotError::ChecksumMismatch`] (or, for flips that survive the
/// checksum probability, as a structural [`SnapshotError::Corrupt`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The format version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// The byte stream ended before the structure it promised.
    Truncated {
        /// How many bytes the current section needed.
        expected: usize,
        /// How many were available.
        actual: usize,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// The sections decode but violate a structural invariant; the message
    /// names the first violation found.
    Corrupt(String),
    /// An underlying filesystem error (save/load only).
    Io(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a graph snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this reader understands {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::Truncated { expected, actual } => {
                write!(f, "snapshot truncated: needed {expected} bytes, had {actual}")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: header says {stored:#018x}, payload hashes to {computed:#018x}"
            ),
            SnapshotError::Corrupt(message) => write!(f, "snapshot corrupt: {message}"),
            SnapshotError::Io(message) => write!(f, "snapshot i/o error: {message}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serializes `graph` into the binary snapshot format described in the
/// module docs. Deterministic: equal graphs produce identical bytes.
pub fn snapshot_bytes(graph: &LabeledGraph) -> Vec<u8> {
    let n = graph.vertex_count();
    let csr = graph.csr();
    let fingerprint = graph_fingerprint(graph);

    let mut payload: Vec<u8> = Vec::with_capacity(8 + 4 * (2 * n + 1) + 8 * graph.edge_count());
    push_u32(&mut payload, n as u32);
    push_u32(&mut payload, graph.edge_count() as u32);
    // Labels section.
    for l in graph.labels() {
        push_u32(&mut payload, l.0);
    }
    // Adjacency section: offsets then concatenated sorted rows.
    let mut offset = 0u32;
    push_u32(&mut payload, 0);
    for v in graph.vertices() {
        offset += csr.neighbors(v).len() as u32;
        push_u32(&mut payload, offset);
    }
    for v in graph.vertices() {
        for &u in csr.neighbors(v) {
            push_u32(&mut payload, u.0);
        }
    }
    // Label-index section: distinct labels ascending, each with its vertex
    // count. Redundant with the labels section, but it lets a future reader
    // rebuild the per-label vertex lists without a full scan, and it gives
    // the loader one more integrity cross-check.
    let classes: Vec<(Label, u32)> = csr
        .labels_with_vertices()
        .map(|(l, vs)| (l, vs.len() as u32))
        .collect();
    push_u32(&mut payload, classes.len() as u32);
    for (l, count) in classes {
        push_u32(&mut payload, l.0);
        push_u32(&mut payload, count);
    }

    let mut checksum = StableHasher::new();
    checksum.write_bytes(&payload);

    let mut out = Vec::with_capacity(SNAPSHOT_HEADER_LEN + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&checksum.finish().to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Validates the header of a snapshot byte stream and returns the stored
/// graph fingerprint without decoding the payload — what a catalog uses to
/// identify a snapshot file cheaply.
pub fn snapshot_fingerprint(bytes: &[u8]) -> Result<u64, SnapshotError> {
    if bytes.len() < SNAPSHOT_HEADER_LEN {
        return Err(SnapshotError::Truncated {
            expected: SNAPSHOT_HEADER_LEN,
            actual: bytes.len(),
        });
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    Ok(u64::from_le_bytes(
        bytes[20..28].try_into().expect("8 bytes"),
    ))
}

/// Decodes a snapshot byte stream back into a [`LabeledGraph`], validating
/// magic, version, checksum, structural invariants and the stored
/// fingerprint. The inverse of [`snapshot_bytes`].
pub fn graph_from_snapshot(bytes: &[u8]) -> Result<LabeledGraph, SnapshotError> {
    let stored_fingerprint = snapshot_fingerprint(bytes)?;
    let stored_checksum = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let payload = &bytes[SNAPSHOT_HEADER_LEN..];
    let mut checksum = StableHasher::new();
    checksum.write_bytes(payload);
    let computed = checksum.finish();
    if computed != stored_checksum {
        return Err(SnapshotError::ChecksumMismatch {
            stored: stored_checksum,
            computed,
        });
    }

    let mut r = SnapshotReader::new(payload);
    let n = r.read_u32()? as usize;
    let e = r.read_u32()? as usize;
    let labels: Vec<Label> = r.read_u32_section(n)?.into_iter().map(Label).collect();
    let offsets = r.read_u32_section(n + 1)?;
    if offsets.first() != Some(&0) {
        return Err(SnapshotError::Corrupt("first CSR offset is not 0".into()));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(SnapshotError::Corrupt("CSR offsets not monotone".into()));
    }
    if offsets.last().copied().unwrap_or(0) as usize != 2 * e {
        return Err(SnapshotError::Corrupt(format!(
            "CSR offsets end at {} but the edge count promises {}",
            offsets.last().copied().unwrap_or(0),
            2 * e
        )));
    }
    let neighbors: Vec<VertexId> = r
        .read_u32_section(2 * e)?
        .into_iter()
        .map(VertexId)
        .collect();
    // Per-row invariants: in-range, strictly ascending (sorted, no
    // duplicates), no self-loops.
    for v in 0..n {
        let row = &neighbors[offsets[v] as usize..offsets[v + 1] as usize];
        for (i, &u) in row.iter().enumerate() {
            if u.index() >= n {
                return Err(SnapshotError::Corrupt(format!(
                    "vertex {v} lists out-of-range neighbor {u}"
                )));
            }
            if u.0 == v as u32 {
                return Err(SnapshotError::Corrupt(format!(
                    "vertex {v} has a self-loop"
                )));
            }
            if i > 0 && row[i - 1] >= u {
                return Err(SnapshotError::Corrupt(format!(
                    "adjacency row of vertex {v} is not strictly ascending"
                )));
            }
        }
    }
    // Symmetry: every directed arc needs its reverse.
    for v in 0..n {
        let row = &neighbors[offsets[v] as usize..offsets[v + 1] as usize];
        for &u in row {
            let back = &neighbors[offsets[u.index()] as usize..offsets[u.index() + 1] as usize];
            if back.binary_search(&VertexId(v as u32)).is_err() {
                return Err(SnapshotError::Corrupt(format!(
                    "edge ({v}, {u}) has no reverse entry"
                )));
            }
        }
    }
    // Label-index section must agree with the labels section.
    let distinct = r.read_u32()? as usize;
    let mut expected: Vec<(u32, u32)> = {
        let mut sorted: Vec<u32> = labels.iter().map(|l| l.0).collect();
        sorted.sort_unstable();
        let mut runs = Vec::new();
        let mut i = 0;
        while i < sorted.len() {
            let mut j = i + 1;
            while j < sorted.len() && sorted[j] == sorted[i] {
                j += 1;
            }
            runs.push((sorted[i], (j - i) as u32));
            i = j;
        }
        runs
    };
    if distinct != expected.len() {
        return Err(SnapshotError::Corrupt(format!(
            "label index lists {distinct} classes, labels section has {}",
            expected.len()
        )));
    }
    expected.reverse(); // pop from the front in order
    for _ in 0..distinct {
        let label = r.read_u32()?;
        let count = r.read_u32()?;
        if expected.pop() != Some((label, count)) {
            return Err(SnapshotError::Corrupt(format!(
                "label index entry ({label}, {count}) disagrees with the labels section"
            )));
        }
    }
    if !r.at_end() {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes after the label index",
            r.remaining()
        )));
    }

    let graph = LabeledGraph::from_csr_parts(labels, &offsets, &neighbors);
    if graph_fingerprint(&graph) != stored_fingerprint {
        return Err(SnapshotError::Corrupt(
            "stored fingerprint disagrees with the decoded graph".into(),
        ));
    }
    Ok(graph)
}

/// Writes `graph` to `path` in the binary snapshot format.
pub fn save_snapshot(path: impl AsRef<Path>, graph: &LabeledGraph) -> Result<(), SnapshotError> {
    let path = path.as_ref();
    std::fs::write(path, snapshot_bytes(graph))
        .map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))
}

/// Reads a binary snapshot file back into a [`LabeledGraph`].
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<LabeledGraph, SnapshotError> {
    let path = path.as_ref();
    let bytes =
        std::fs::read(path).map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))?;
    graph_from_snapshot(&bytes)
}

#[inline]
fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian cursor over the snapshot payload.
struct SnapshotReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn read_u32(&mut self) -> Result<u32, SnapshotError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(SnapshotError::Truncated {
                expected: self.pos + 4,
                actual: self.bytes.len(),
            });
        }
        let v = u32::from_le_bytes(self.bytes[self.pos..self.pos + 4].try_into().expect("4"));
        self.pos += 4;
        Ok(v)
    }

    fn read_u32_section(&mut self, count: usize) -> Result<Vec<u32>, SnapshotError> {
        let needed = self.pos + 4 * count;
        if needed > self.bytes.len() {
            return Err(SnapshotError::Truncated {
                expected: needed,
                actual: self.bytes.len(),
            });
        }
        let out = self.bytes[self.pos..needed]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4")))
            .collect();
        self.pos = needed;
        Ok(out)
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_roundtrip() {
        let g = LabeledGraph::from_parts(&[Label(3), Label(4), Label(3)], &[(0, 1), (1, 2)]);
        let text = write_graph(&g);
        let back = read_graph(&text).expect("parse");
        assert_eq!(back.vertex_count(), 3);
        assert_eq!(back.edge_count(), 2);
        assert_eq!(back.label(VertexId(0)), Label(3));
        assert!(back.has_edge(VertexId(1), VertexId(2)));
    }

    #[test]
    fn database_roundtrip() {
        let g1 = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let g2 = LabeledGraph::from_parts(&[Label(2)], &[]);
        let db = GraphDatabase::new(vec![g1, g2]);
        let text = write_database(&db);
        let back = read_database(&text).expect("parse");
        assert_eq!(back.len(), 2);
        assert_eq!(back.graphs()[0].edge_count(), 1);
        assert_eq!(back.graphs()[1].vertex_count(), 1);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hello\n\nv 0 7\nv 1 8\ne 0 1\n";
        let g = read_graph(text).expect("parse");
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn unknown_record_is_an_error() {
        assert!(matches!(
            read_graph("x 1 2"),
            Err(ParseError::UnknownRecord(_))
        ));
    }

    #[test]
    fn out_of_order_vertex_is_an_error() {
        assert!(matches!(read_graph("v 5 0"), Err(ParseError::BadVertex(_))));
    }

    #[test]
    fn edge_to_unknown_vertex_is_an_error() {
        assert!(matches!(
            read_graph("v 0 1\ne 0 9"),
            Err(ParseError::BadVertex(_))
        ));
    }

    #[test]
    fn bad_number_is_an_error() {
        assert!(matches!(
            read_graph("v zero 1"),
            Err(ParseError::BadNumber(_))
        ));
        assert!(matches!(read_graph("v 0"), Err(ParseError::BadNumber(_))));
    }

    fn snapshot_sample() -> LabeledGraph {
        LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(1), Label(0), Label(7)],
            &[(0, 1), (0, 2), (2, 3), (1, 3)],
        )
    }

    #[test]
    fn snapshot_roundtrip_is_byte_identical() {
        let g = snapshot_sample();
        let bytes = snapshot_bytes(&g);
        let back = graph_from_snapshot(&bytes).expect("decode");
        assert_eq!(back.vertex_count(), g.vertex_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.labels(), g.labels());
        for v in g.vertices() {
            assert_eq!(back.neighbors(v), g.neighbors(v));
        }
        // Save → load → re-save produces identical bytes, and the stored
        // fingerprint survives the trip.
        assert_eq!(snapshot_bytes(&back), bytes);
        assert_eq!(
            snapshot_fingerprint(&bytes).expect("header"),
            graph_fingerprint(&back)
        );
    }

    #[test]
    fn empty_graph_snapshots() {
        let g = LabeledGraph::new();
        let bytes = snapshot_bytes(&g);
        let back = graph_from_snapshot(&bytes).expect("decode");
        assert_eq!(back.vertex_count(), 0);
        assert_eq!(back.edge_count(), 0);
        assert_eq!(snapshot_bytes(&back), bytes);
    }

    #[test]
    fn snapshot_rejects_bad_magic_and_version() {
        let mut bytes = snapshot_bytes(&snapshot_sample());
        bytes[0] = b'X';
        assert!(matches!(
            graph_from_snapshot(&bytes),
            Err(SnapshotError::BadMagic)
        ));
        let mut bytes = snapshot_bytes(&snapshot_sample());
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            graph_from_snapshot(&bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncated_snapshot_is_a_typed_error() {
        let bytes = snapshot_bytes(&snapshot_sample());
        // Every truncation point must produce an error, never a panic. Short
        // prefixes fail as Truncated; payload-shortening also breaks the
        // checksum first — either way a typed error.
        for len in 0..bytes.len() {
            assert!(
                graph_from_snapshot(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn bit_flipped_snapshot_is_a_typed_error() {
        let bytes = snapshot_bytes(&snapshot_sample());
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x20;
            assert!(
                graph_from_snapshot(&corrupt).is_err(),
                "flip at byte {i} decoded"
            );
        }
    }

    #[test]
    fn structural_corruption_is_reported_after_a_checksum_fixup() {
        // Forge a payload with an asymmetric edge and a matching checksum: the
        // structural validator, not just the checksum, must catch it.
        let g = snapshot_sample();
        let mut bytes = snapshot_bytes(&g);
        let payload_start = 28;
        // neighbors section starts after counts (8) + labels (5*4) + offsets (6*4).
        let neighbors_at = payload_start + 8 + 20 + 24;
        bytes[neighbors_at..neighbors_at + 4].copy_from_slice(&3u32.to_le_bytes());
        let mut h = StableHasher::new();
        h.write_bytes(&bytes[payload_start..]);
        bytes[12..20].copy_from_slice(&h.finish().to_le_bytes());
        match graph_from_snapshot(&bytes) {
            Err(SnapshotError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_file_helpers_roundtrip() {
        let g = snapshot_sample();
        let dir = std::env::temp_dir().join(format!("spidermine-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("sample.snap");
        save_snapshot(&path, &g).expect("save");
        let back = load_snapshot(&path).expect("load");
        assert_eq!(snapshot_bytes(&back), snapshot_bytes(&g));
        std::fs::remove_dir_all(&dir).ok();
        assert!(matches!(
            load_snapshot(dir.join("missing.snap")),
            Err(SnapshotError::Io(_))
        ));
    }
}
