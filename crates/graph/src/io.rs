//! Graph persistence: a line-oriented text format and a versioned binary
//! snapshot format.
//!
//! # Text format
//!
//! One record per line:
//!
//! ```text
//! # comment
//! t <graph-index>          -- starts a new graph (only needed for databases)
//! v <vertex-id> <label>    -- vertex ids must be dense and in order
//! e <src> <dst>            -- undirected edge
//! ```
//!
//! This mirrors the de-facto standard format used by gSpan-family tools, which
//! makes it easy to feed externally generated data into the miners.
//!
//! # Binary snapshot format v1 (eager)
//!
//! [`snapshot_bytes`] / [`graph_from_snapshot`] (and the file-level
//! [`save_snapshot`] / [`load_snapshot`]) persist a [`LabeledGraph`] in its
//! frozen CSR shape, so a service restart reloads flat arrays instead of
//! replaying edge insertions and re-sorting adjacency. All integers are
//! little-endian:
//!
//! ```text
//! offset  size  field
//!      0     8  magic "SPDRSNAP"
//!      8     4  format version (1)
//!     12     8  FNV-1a checksum over the payload (everything after byte 28)
//!     20     8  graph fingerprint (signature::graph_fingerprint)
//!     28     4  vertex count n                 ┐
//!             4  edge count e                  │
//!        n * 4  labels section                 │ payload
//!    (n+1) * 4  CSR offsets section            │ (checksummed)
//!       2e * 4  CSR neighbors section          │
//!     variable  label-index section:           │
//!               distinct-label count d, then   │
//!               d × (label, vertex count)      ┘
//! ```
//!
//! The writer is deterministic, so save → load → re-save round-trips
//! byte-identically; the reader validates magic, version, checksum, full
//! structural well-formedness (monotone offsets, sorted symmetric rows, no
//! self-loops, label index consistent with the labels section) and the stored
//! fingerprint, reporting any violation as a typed [`SnapshotError`] — a
//! truncated or bit-flipped file never panics.
//!
//! # Binary snapshot format v2 (zero-copy, lazy)
//!
//! Format v2 ([`snapshot_bytes_v2`] / [`save_snapshot_v2`] /
//! [`load_snapshot_v2`] / [`open_snapshot`]) keeps the same information
//! content but re-arranges it for *zero-copy* loading: each section is
//! page-aligned, independently checksummed via a section table, and laid out
//! as fixed-width little-endian `u32` arrays, so the on-disk bytes *are* the
//! in-memory representation. A memory-mapped file (see `mmap-lite`) backs the
//! graph directly; loading touches only the header until a section is used.
//!
//! ```text
//! offset  size  field
//!      0     8  magic "SPDRSNAP"
//!      8     4  format version (2)
//!     12     4  section count (4)
//!     16     8  graph fingerprint (signature::graph_fingerprint)
//!     24     4  vertex count n
//!     28     4  edge count e
//!     32   128  section table: 4 × { id u32, reserved u32,
//!                                    offset u64, len u64, checksum u64 }
//!    160     8  FNV-1a checksum over bytes 0..160 (header + table)
//!   4096     …  sections, each at the next 4096-aligned offset, in id order:
//!               1 labels      n × u32
//!               2 csr-offsets (n+1) × u32
//!               3 neighbors   2e × u32
//!               4 label-index d, labels[d], starts[d+1], vertices[n] (u32s)
//! ```
//!
//! The label-index section is *redundant* (derivable from the labels
//! section), which is what allows it to be validated lazily: a mapped load
//! leaves it untouched until a label-index-using algorithm runs, checksums it
//! at that point, and falls back to rebuilding from the labels section if it
//! is corrupt. The three core sections are checksummed and structurally
//! validated at materialization time, and the fingerprint is recomputed from
//! the decoded graph. [`probe_snapshot`] validates header + section table
//! only — O(header) no matter how large the graph — and is what the service
//! catalog uses to register snapshots without loading them.
//! See `DESIGN.md` § "Snapshot format v2".

use crate::csr::PackedLabelIndex;
use crate::graph::{LabeledGraph, VertexId};
use crate::label::Label;
use crate::shared::{ArcSlice, SharedBytes};
use crate::signature::{graph_fingerprint, StableHasher};
use crate::transaction::GraphDatabase;
use mmap_lite::{AlignedBuf, Mmap};
use spidermine_faultline as faultline;
use spidermine_telemetry as telemetry;
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::path::Path;

/// Errors produced while parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line did not match any known record type.
    UnknownRecord(String),
    /// A numeric field failed to parse.
    BadNumber(String),
    /// A vertex id was out of order or referenced before definition.
    BadVertex(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnknownRecord(l) => write!(f, "unknown record: {l}"),
            ParseError::BadNumber(l) => write!(f, "bad number in: {l}"),
            ParseError::BadVertex(l) => write!(f, "bad vertex reference in: {l}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes a single graph.
pub fn write_graph(graph: &LabeledGraph) -> String {
    let mut out = String::new();
    for v in graph.vertices() {
        writeln!(out, "v {} {}", v.0, graph.label(v).0).expect("write to string");
    }
    for (u, v) in graph.edges() {
        writeln!(out, "e {} {}", u.0, v.0).expect("write to string");
    }
    out
}

/// Serializes a transaction database (multiple graphs).
pub fn write_database(db: &GraphDatabase) -> String {
    let mut out = String::new();
    for (i, g) in db.graphs().iter().enumerate() {
        writeln!(out, "t {i}").expect("write to string");
        out.push_str(&write_graph(g));
    }
    out
}

/// Parses a single graph. `t` records are rejected here; use
/// [`read_database`] for multi-graph input.
pub fn read_graph(text: &str) -> Result<LabeledGraph, ParseError> {
    let mut g = LabeledGraph::new();
    for line in text.lines() {
        parse_line(line, &mut g, false)?;
    }
    Ok(g)
}

/// Parses a transaction database.
pub fn read_database(text: &str) -> Result<GraphDatabase, ParseError> {
    let mut graphs: Vec<LabeledGraph> = Vec::new();
    let mut current: Option<LabeledGraph> = None;
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if trimmed.starts_with('t') {
            if let Some(g) = current.take() {
                graphs.push(g);
            }
            current = Some(LabeledGraph::new());
            continue;
        }
        let g = current.get_or_insert_with(LabeledGraph::new);
        parse_line(trimmed, g, true)?;
    }
    if let Some(g) = current.take() {
        graphs.push(g);
    }
    Ok(GraphDatabase::new(graphs))
}

fn parse_line(line: &str, g: &mut LabeledGraph, _in_db: bool) -> Result<(), ParseError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(());
    }
    let mut parts = trimmed.split_whitespace();
    match parts.next() {
        Some("v") => {
            let id: u32 = parse_num(parts.next(), trimmed)?;
            let label: u32 = parse_num(parts.next(), trimmed)?;
            if id as usize != g.vertex_count() {
                return Err(ParseError::BadVertex(trimmed.to_owned()));
            }
            g.add_vertex(Label(label));
            Ok(())
        }
        Some("e") => {
            let u: u32 = parse_num(parts.next(), trimmed)?;
            let v: u32 = parse_num(parts.next(), trimmed)?;
            if u as usize >= g.vertex_count() || v as usize >= g.vertex_count() {
                return Err(ParseError::BadVertex(trimmed.to_owned()));
            }
            g.add_edge(VertexId(u), VertexId(v));
            Ok(())
        }
        _ => Err(ParseError::UnknownRecord(trimmed.to_owned())),
    }
}

fn parse_num(field: Option<&str>, line: &str) -> Result<u32, ParseError> {
    field
        .ok_or_else(|| ParseError::BadNumber(line.to_owned()))?
        .parse()
        .map_err(|_| ParseError::BadNumber(line.to_owned()))
}

// ---------------------------------------------------------------------------
// Binary snapshot format
// ---------------------------------------------------------------------------

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SPDRSNAP";

/// Snapshot format version 1: single checksummed payload, eager decode.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Snapshot format version 2: page-aligned sections, zero-copy mmap loading.
pub const SNAPSHOT_VERSION_V2: u32 = 2;

/// Header length: magic + version + checksum + fingerprint.
const SNAPSHOT_HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// Section alignment in a v2 snapshot: one page, so a memory mapping hands
/// every section out 4-byte (in fact page-) aligned for in-place
/// reinterpretation as `u32` arrays.
pub const SNAPSHOT_PAGE: usize = 4096;

/// Number of sections in a v2 snapshot.
const V2_SECTION_COUNT: usize = 4;

/// Fixed part of the v2 header before the section table.
const V2_FIXED_LEN: usize = 8 + 4 + 4 + 8 + 4 + 4;

/// One section-table entry: id + reserved + offset + len + checksum.
const V2_TABLE_ENTRY_LEN: usize = 4 + 4 + 8 + 8 + 8;

/// Full v2 header: fixed part, section table, header checksum.
const V2_HEADER_LEN: usize = V2_FIXED_LEN + V2_SECTION_COUNT * V2_TABLE_ENTRY_LEN + 8;

/// Section ids (and table order) in a v2 snapshot.
const SECTION_LABELS: u32 = 1;
const SECTION_OFFSETS: u32 = 2;
const SECTION_NEIGHBORS: u32 = 3;
const SECTION_LABEL_INDEX: u32 = 4;

/// Human-readable section name for error messages.
fn section_name(id: u32) -> &'static str {
    match id {
        SECTION_LABELS => "labels",
        SECTION_OFFSETS => "csr-offsets",
        SECTION_NEIGHBORS => "neighbors",
        SECTION_LABEL_INDEX => "label-index",
        _ => "unknown",
    }
}

/// Everything that can go wrong reading (or persisting) a binary snapshot.
///
/// Corruption is always reported as a typed error, never a panic: a truncated
/// file surfaces as [`SnapshotError::Truncated`], a bit flip as
/// [`SnapshotError::ChecksumMismatch`] (or, for flips that survive the
/// checksum probability, as a structural [`SnapshotError::Corrupt`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The format version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// The byte stream ended before the structure it promised.
    Truncated {
        /// How many bytes the current section needed.
        expected: usize,
        /// How many were available.
        actual: usize,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// A v2 section's bytes do not hash to the checksum in the section table.
    SectionChecksumMismatch {
        /// Which section ("labels", "csr-offsets", "neighbors",
        /// "label-index").
        section: &'static str,
        /// Checksum stored in the section table.
        stored: u64,
        /// Checksum computed over the section bytes.
        computed: u64,
    },
    /// A v2 section-table entry points at an offset that is not page-aligned,
    /// which would break in-place `u32` reinterpretation of a mapping.
    MisalignedSection {
        /// Which section.
        section: &'static str,
        /// The offending file offset.
        offset: u64,
    },
    /// The sections decode but violate a structural invariant; the message
    /// names the first violation found.
    Corrupt(String),
    /// An underlying filesystem error (save/load only).
    Io(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a graph snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} for this reader (formats {SNAPSHOT_VERSION} and {SNAPSHOT_VERSION_V2} exist)")
            }
            SnapshotError::Truncated { expected, actual } => {
                write!(f, "snapshot truncated: needed {expected} bytes, had {actual}")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: header says {stored:#018x}, payload hashes to {computed:#018x}"
            ),
            SnapshotError::SectionChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "snapshot {section} section checksum mismatch: table says {stored:#018x}, section hashes to {computed:#018x}"
            ),
            SnapshotError::MisalignedSection { section, offset } => write!(
                f,
                "snapshot {section} section offset {offset} is not {SNAPSHOT_PAGE}-byte aligned"
            ),
            SnapshotError::Corrupt(message) => write!(f, "snapshot corrupt: {message}"),
            SnapshotError::Io(message) => write!(f, "snapshot i/o error: {message}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl SnapshotError {
    /// Whether the failure is *transient* — worth retrying against the same
    /// file — as opposed to permanent corruption that will fail identically
    /// on every read.
    ///
    /// Only [`SnapshotError::Io`] qualifies: filesystem errors (EINTR under
    /// load, NFS hiccups, a file mid-replacement) can heal on the next
    /// attempt, while bad magic, checksum mismatches and structural
    /// corruption are properties of the bytes themselves. Retry policies and
    /// the catalog's materialization cache branch on this: transient errors
    /// are retried / re-probed, permanent ones are sticky typed errors.
    pub fn is_transient(&self) -> bool {
        matches!(self, SnapshotError::Io(_))
    }
}

/// Applies an injected read fault to a freshly read snapshot buffer:
/// `Error` becomes a transient [`SnapshotError::Io`], corruption kinds
/// damage the buffer in place and let the loader's own validation classify
/// the result (checksum mismatch, truncation, structural corruption).
fn apply_injected_read_fault(
    bytes: &mut Vec<u8>,
    kind: faultline::FaultKind,
    path: &Path,
) -> Result<(), SnapshotError> {
    if kind == faultline::FaultKind::Error {
        return Err(SnapshotError::Io(format!(
            "{}: injected transient read fault",
            path.display()
        )));
    }
    faultline::corrupt_buffer(bytes, kind);
    Ok(())
}

/// Serializes `graph` into the binary snapshot format described in the
/// module docs. Deterministic: equal graphs produce identical bytes.
pub fn snapshot_bytes(graph: &LabeledGraph) -> Vec<u8> {
    let n = graph.vertex_count();
    let csr = graph.csr();
    let fingerprint = graph_fingerprint(graph);

    let mut payload: Vec<u8> = Vec::with_capacity(8 + 4 * (2 * n + 1) + 8 * graph.edge_count());
    push_u32(&mut payload, n as u32);
    push_u32(&mut payload, graph.edge_count() as u32);
    // Labels section.
    for l in graph.labels() {
        push_u32(&mut payload, l.0);
    }
    // Adjacency section: offsets then concatenated sorted rows.
    let mut offset = 0u32;
    push_u32(&mut payload, 0);
    for v in graph.vertices() {
        offset += csr.neighbors(v).len() as u32;
        push_u32(&mut payload, offset);
    }
    for v in graph.vertices() {
        for &u in csr.neighbors(v) {
            push_u32(&mut payload, u.0);
        }
    }
    // Label-index section: distinct labels ascending, each with its vertex
    // count. Redundant with the labels section, but it lets a future reader
    // rebuild the per-label vertex lists without a full scan, and it gives
    // the loader one more integrity cross-check.
    let classes: Vec<(Label, u32)> = csr
        .labels_with_vertices()
        .map(|(l, vs)| (l, vs.len() as u32))
        .collect();
    push_u32(&mut payload, classes.len() as u32);
    for (l, count) in classes {
        push_u32(&mut payload, l.0);
        push_u32(&mut payload, count);
    }

    let mut checksum = StableHasher::new();
    checksum.write_bytes(&payload);

    let mut out = Vec::with_capacity(SNAPSHOT_HEADER_LEN + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&checksum.finish().to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Validates the header of a snapshot byte stream and returns the stored
/// graph fingerprint without decoding the payload — what a catalog uses to
/// identify a snapshot file cheaply.
pub fn snapshot_fingerprint(bytes: &[u8]) -> Result<u64, SnapshotError> {
    if bytes.len() < SNAPSHOT_HEADER_LEN {
        return Err(SnapshotError::Truncated {
            expected: SNAPSHOT_HEADER_LEN,
            actual: bytes.len(),
        });
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    Ok(u64::from_le_bytes(
        bytes[20..28].try_into().expect("8 bytes"),
    ))
}

/// Decodes a snapshot byte stream back into a [`LabeledGraph`], validating
/// magic, version, checksum, structural invariants and the stored
/// fingerprint. The inverse of [`snapshot_bytes`].
pub fn graph_from_snapshot(bytes: &[u8]) -> Result<LabeledGraph, SnapshotError> {
    let stored_fingerprint = snapshot_fingerprint(bytes)?;
    let stored_checksum = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let payload = &bytes[SNAPSHOT_HEADER_LEN..];
    let mut checksum = StableHasher::new();
    checksum.write_bytes(payload);
    let computed = checksum.finish();
    if computed != stored_checksum {
        return Err(SnapshotError::ChecksumMismatch {
            stored: stored_checksum,
            computed,
        });
    }

    let mut r = SnapshotReader::new(payload);
    let n = r.read_u32()? as usize;
    let e = r.read_u32()? as usize;
    let labels: Vec<Label> = r.read_u32_section(n)?.into_iter().map(Label).collect();
    let offsets = r.read_u32_section(n + 1)?;
    let neighbors: Vec<VertexId> = r
        .read_u32_section(2 * e)?
        .into_iter()
        .map(VertexId)
        .collect();
    validate_csr_structure(n, e, &offsets, &neighbors)?;
    // Label-index section must agree with the labels section.
    let distinct = r.read_u32()? as usize;
    let mut expected: Vec<(u32, u32)> = {
        let mut sorted: Vec<u32> = labels.iter().map(|l| l.0).collect();
        sorted.sort_unstable();
        let mut runs = Vec::new();
        let mut i = 0;
        while i < sorted.len() {
            let mut j = i + 1;
            while j < sorted.len() && sorted[j] == sorted[i] {
                j += 1;
            }
            runs.push((sorted[i], (j - i) as u32));
            i = j;
        }
        runs
    };
    if distinct != expected.len() {
        return Err(SnapshotError::Corrupt(format!(
            "label index lists {distinct} classes, labels section has {}",
            expected.len()
        )));
    }
    expected.reverse(); // pop from the front in order
    for _ in 0..distinct {
        let label = r.read_u32()?;
        let count = r.read_u32()?;
        if expected.pop() != Some((label, count)) {
            return Err(SnapshotError::Corrupt(format!(
                "label index entry ({label}, {count}) disagrees with the labels section"
            )));
        }
    }
    if !r.at_end() {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes after the label index",
            r.remaining()
        )));
    }

    let graph = LabeledGraph::from_csr_parts(labels, &offsets, &neighbors);
    if graph_fingerprint(&graph) != stored_fingerprint {
        return Err(SnapshotError::Corrupt(
            "stored fingerprint disagrees with the decoded graph".into(),
        ));
    }
    Ok(graph)
}

/// CSR well-formedness shared by both format readers: monotone offsets that
/// span exactly `2e` arcs, rows strictly ascending, in range, self-loop-free,
/// and symmetric.
fn validate_csr_structure(
    n: usize,
    e: usize,
    offsets: &[u32],
    neighbors: &[VertexId],
) -> Result<(), SnapshotError> {
    if offsets.first() != Some(&0) {
        return Err(SnapshotError::Corrupt("first CSR offset is not 0".into()));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(SnapshotError::Corrupt("CSR offsets not monotone".into()));
    }
    if offsets.last().copied().unwrap_or(0) as usize != 2 * e {
        return Err(SnapshotError::Corrupt(format!(
            "CSR offsets end at {} but the edge count promises {}",
            offsets.last().copied().unwrap_or(0),
            2 * e
        )));
    }
    // Per-row invariants: in-range, strictly ascending (sorted, no
    // duplicates), no self-loops.
    for v in 0..n {
        let row = &neighbors[offsets[v] as usize..offsets[v + 1] as usize];
        for (i, &u) in row.iter().enumerate() {
            if u.index() >= n {
                return Err(SnapshotError::Corrupt(format!(
                    "vertex {v} lists out-of-range neighbor {u}"
                )));
            }
            if u.0 == v as u32 {
                return Err(SnapshotError::Corrupt(format!(
                    "vertex {v} has a self-loop"
                )));
            }
            if i > 0 && row[i - 1] >= u {
                return Err(SnapshotError::Corrupt(format!(
                    "adjacency row of vertex {v} is not strictly ascending"
                )));
            }
        }
    }
    // Symmetry: every directed arc needs its reverse.
    for v in 0..n {
        let row = &neighbors[offsets[v] as usize..offsets[v + 1] as usize];
        for &u in row {
            let back = &neighbors[offsets[u.index()] as usize..offsets[u.index() + 1] as usize];
            if back.binary_search(&VertexId(v as u32)).is_err() {
                return Err(SnapshotError::Corrupt(format!(
                    "edge ({v}, {u}) has no reverse entry"
                )));
            }
        }
    }
    Ok(())
}

/// Writes `bytes` to `path` atomically: a unique temporary file in the same
/// directory is written, fsync'd, and renamed into place, so concurrent
/// readers (and post-crash restores) see either the old content or the new —
/// never a partial write. The temporary name starts with `.` so directory
/// scans skip it.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<()> {
    let path = path.as_ref();
    let io = io_metrics();
    io.writes.inc();
    io.write_bytes.add(bytes.len() as u64);
    let started = std::time::Instant::now();
    if faultline::check(faultline::FaultSite::DiskWrite).is_some() {
        // Injected before the temp file exists, so the atomic-write
        // invariant (old content or new, never partial) holds trivially.
        return Err(std::io::Error::other(format!(
            "{}: injected transient write fault",
            path.display()
        )));
    }
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("snapshot");
    let tmp = path.with_file_name(format!(".{file_name}.tmp.{}", std::process::id()));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    io.write_nanos.observe_duration(started.elapsed());
    result
}

/// Process-global snapshot I/O metrics: registry handles resolved once, so
/// the I/O paths never take the registry lock.
struct IoMetrics {
    writes: telemetry::Counter,
    write_bytes: telemetry::Counter,
    write_nanos: telemetry::Histogram,
    loads: telemetry::Counter,
    load_errors: telemetry::Counter,
    load_nanos: telemetry::Histogram,
}

fn io_metrics() -> &'static IoMetrics {
    static METRICS: std::sync::OnceLock<IoMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = telemetry::global();
        IoMetrics {
            writes: reg.counter("snapshot_writes_total"),
            write_bytes: reg.counter("snapshot_write_bytes_total"),
            write_nanos: reg.histogram("snapshot_write_nanos"),
            loads: reg.counter("snapshot_loads_total"),
            load_errors: reg.counter("snapshot_load_errors_total"),
            load_nanos: reg.histogram("snapshot_load_nanos"),
        }
    })
}

/// Counts and times one snapshot load attempt around `f`.
fn observe_load<T>(f: impl FnOnce() -> Result<T, SnapshotError>) -> Result<T, SnapshotError> {
    let io = io_metrics();
    io.loads.inc();
    let started = std::time::Instant::now();
    let result = f();
    io.load_nanos.observe_duration(started.elapsed());
    if result.is_err() {
        io.load_errors.inc();
    }
    result
}

/// Writes `graph` to `path` in the v1 binary snapshot format, atomically
/// (temp file + fsync + rename; see [`atomic_write`]).
pub fn save_snapshot(path: impl AsRef<Path>, graph: &LabeledGraph) -> Result<(), SnapshotError> {
    let path = path.as_ref();
    atomic_write(path, &snapshot_bytes(graph))
        .map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))
}

/// Reads a v1 binary snapshot file back into a [`LabeledGraph`].
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<LabeledGraph, SnapshotError> {
    let path = path.as_ref();
    observe_load(|| {
        let mut bytes = std::fs::read(path)
            .map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))?;
        if let Some(kind) = faultline::check(faultline::FaultSite::DiskRead) {
            apply_injected_read_fault(&mut bytes, kind, path)?;
        }
        graph_from_snapshot(&bytes)
    })
}

#[inline]
fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian cursor over the snapshot payload.
struct SnapshotReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn read_u32(&mut self) -> Result<u32, SnapshotError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(SnapshotError::Truncated {
                expected: self.pos + 4,
                actual: self.bytes.len(),
            });
        }
        let v = u32::from_le_bytes(self.bytes[self.pos..self.pos + 4].try_into().expect("4"));
        self.pos += 4;
        Ok(v)
    }

    fn read_u32_section(&mut self, count: usize) -> Result<Vec<u32>, SnapshotError> {
        let needed = self.pos + 4 * count;
        if needed > self.bytes.len() {
            return Err(SnapshotError::Truncated {
                expected: needed,
                actual: self.bytes.len(),
            });
        }
        let out = self.bytes[self.pos..needed]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4")))
            .collect();
        self.pos = needed;
        Ok(out)
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

// ---------------------------------------------------------------------------
// Binary snapshot format v2: page-aligned sections, zero-copy loading
// ---------------------------------------------------------------------------

/// One entry of a v2 snapshot's section table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section id (1 = labels, 2 = csr-offsets, 3 = neighbors,
    /// 4 = label-index).
    pub id: u32,
    /// File offset of the section; always [`SNAPSHOT_PAGE`]-aligned.
    pub offset: u64,
    /// Section length in bytes.
    pub len: u64,
    /// FNV-1a checksum over the section bytes.
    pub checksum: u64,
}

impl SectionInfo {
    /// Human-readable section name ("labels", "csr-offsets", …).
    pub fn name(&self) -> &'static str {
        section_name(self.id)
    }
}

/// Everything a header-only probe learns about a snapshot file: enough to
/// register it in a catalog (identity, version, size) without reading any
/// data pages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Format version (1 or 2).
    pub version: u32,
    /// The graph's content fingerprint ([`graph_fingerprint`]).
    pub fingerprint: u64,
    /// Number of vertices.
    pub vertex_count: u32,
    /// Number of undirected edges.
    pub edge_count: u32,
    /// Total file length in bytes.
    pub file_len: u64,
    /// The validated section table (empty for v1 snapshots, which have no
    /// section table).
    pub sections: Vec<SectionInfo>,
}

impl SnapshotInfo {
    /// The table entry for section `id`, if present (v2 only).
    pub fn section(&self, id: u32) -> Option<&SectionInfo> {
        self.sections.iter().find(|s| s.id == id)
    }
}

/// Parses and validates a snapshot header (both formats) from the file's
/// first bytes. `prefix` holds at least the first `min(file_len, 168)` bytes;
/// `file_len` is the total file length, used to bounds-check the section
/// table without reading the sections.
fn parse_snapshot_header(prefix: &[u8], file_len: u64) -> Result<SnapshotInfo, SnapshotError> {
    if prefix.len() < 12 {
        return Err(SnapshotError::Truncated {
            expected: 12,
            actual: prefix.len(),
        });
    }
    if prefix[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(prefix[8..12].try_into().expect("4 bytes"));
    match version {
        SNAPSHOT_VERSION => {
            // v1 keeps n and e at the start of the payload, right after the
            // 28-byte header.
            let needed = SNAPSHOT_HEADER_LEN + 8;
            if prefix.len() < needed {
                return Err(SnapshotError::Truncated {
                    expected: needed,
                    actual: prefix.len(),
                });
            }
            Ok(SnapshotInfo {
                version,
                fingerprint: u64::from_le_bytes(prefix[20..28].try_into().expect("8 bytes")),
                vertex_count: u32::from_le_bytes(prefix[28..32].try_into().expect("4 bytes")),
                edge_count: u32::from_le_bytes(prefix[32..36].try_into().expect("4 bytes")),
                file_len,
                sections: Vec::new(),
            })
        }
        SNAPSHOT_VERSION_V2 => {
            if prefix.len() < V2_HEADER_LEN {
                return Err(SnapshotError::Truncated {
                    expected: V2_HEADER_LEN,
                    actual: prefix.len(),
                });
            }
            let stored = u64::from_le_bytes(
                prefix[V2_HEADER_LEN - 8..V2_HEADER_LEN]
                    .try_into()
                    .expect("8 bytes"),
            );
            let mut h = StableHasher::new();
            h.write_bytes(&prefix[..V2_HEADER_LEN - 8]);
            let computed = h.finish();
            if computed != stored {
                return Err(SnapshotError::ChecksumMismatch { stored, computed });
            }
            let section_count = u32::from_le_bytes(prefix[12..16].try_into().expect("4 bytes"));
            if section_count as usize != V2_SECTION_COUNT {
                return Err(SnapshotError::Corrupt(format!(
                    "v2 snapshot lists {section_count} sections, expected {V2_SECTION_COUNT}"
                )));
            }
            let fingerprint = u64::from_le_bytes(prefix[16..24].try_into().expect("8 bytes"));
            let n = u32::from_le_bytes(prefix[24..28].try_into().expect("4 bytes"));
            let e = u32::from_le_bytes(prefix[28..32].try_into().expect("4 bytes"));

            let mut sections = Vec::with_capacity(V2_SECTION_COUNT);
            for i in 0..V2_SECTION_COUNT {
                let at = V2_FIXED_LEN + i * V2_TABLE_ENTRY_LEN;
                let entry = &prefix[at..at + V2_TABLE_ENTRY_LEN];
                let id = u32::from_le_bytes(entry[0..4].try_into().expect("4 bytes"));
                let offset = u64::from_le_bytes(entry[8..16].try_into().expect("8 bytes"));
                let len = u64::from_le_bytes(entry[16..24].try_into().expect("8 bytes"));
                let checksum = u64::from_le_bytes(entry[24..32].try_into().expect("8 bytes"));
                if id != i as u32 + 1 {
                    return Err(SnapshotError::Corrupt(format!(
                        "section table entry {i} has id {id}, expected {}",
                        i + 1
                    )));
                }
                if offset % SNAPSHOT_PAGE as u64 != 0 {
                    return Err(SnapshotError::MisalignedSection {
                        section: section_name(id),
                        offset,
                    });
                }
                let end = offset
                    .checked_add(len)
                    .ok_or_else(|| SnapshotError::Corrupt("section range overflows".into()))?;
                if end > file_len {
                    return Err(SnapshotError::Truncated {
                        expected: end as usize,
                        actual: file_len as usize,
                    });
                }
                // Fixed-width sections must match the advertised graph shape;
                // the label-index section's inner layout is validated when it
                // is decoded.
                let expected_len: Option<u64> = match id {
                    SECTION_LABELS => Some(4 * n as u64),
                    SECTION_OFFSETS => Some(4 * (n as u64 + 1)),
                    SECTION_NEIGHBORS => Some(8 * e as u64),
                    _ => (len % 4 == 0).then_some(len),
                };
                if expected_len != Some(len) {
                    return Err(SnapshotError::Corrupt(format!(
                        "{} section is {len} bytes, expected {expected_len:?} for n={n}, e={e}",
                        section_name(id)
                    )));
                }
                sections.push(SectionInfo {
                    id,
                    offset,
                    len,
                    checksum,
                });
            }
            Ok(SnapshotInfo {
                version,
                fingerprint,
                vertex_count: n,
                edge_count: e,
                file_len,
                sections,
            })
        }
        other => Err(SnapshotError::UnsupportedVersion(other)),
    }
}

/// Validates a snapshot file's header (and, for v2, its section table)
/// without reading any data pages: O(header) regardless of graph size.
///
/// This is how the service catalog registers snapshots — identity comes from
/// the stored fingerprint, integrity of the data sections is deferred to
/// materialization. Truncated headers, bad magic, unknown versions,
/// misaligned or out-of-bounds sections all surface as typed
/// [`SnapshotError`]s.
pub fn probe_snapshot(path: impl AsRef<Path>) -> Result<SnapshotInfo, SnapshotError> {
    let path = path.as_ref();
    let io_err = |e: std::io::Error| SnapshotError::Io(format!("{}: {e}", path.display()));
    if faultline::check(faultline::FaultSite::DiskProbe).is_some() {
        return Err(SnapshotError::Io(format!(
            "{}: injected transient probe fault",
            path.display()
        )));
    }
    let mut file = std::fs::File::open(path).map_err(io_err)?;
    let file_len = file.metadata().map_err(io_err)?.len();
    let mut prefix = [0u8; V2_HEADER_LEN];
    let mut read = 0;
    while read < prefix.len() {
        match file.read(&mut prefix[read..]) {
            Ok(0) => break,
            Ok(k) => read += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_err(e)),
        }
    }
    parse_snapshot_header(&prefix[..read], file_len)
}

/// Serializes `graph` into the v2 snapshot format described in the module
/// docs. Deterministic: equal graphs produce identical bytes.
pub fn snapshot_bytes_v2(graph: &LabeledGraph) -> Vec<u8> {
    let n = graph.vertex_count();
    let csr = graph.csr();
    let fingerprint = graph_fingerprint(graph);

    // Section payloads, in table order.
    let mut labels = Vec::with_capacity(4 * n);
    for l in graph.labels() {
        push_u32(&mut labels, l.0);
    }
    let mut offsets = Vec::with_capacity(4 * (n + 1));
    let mut total = 0u32;
    push_u32(&mut offsets, 0);
    for v in graph.vertices() {
        total += csr.neighbors(v).len() as u32;
        push_u32(&mut offsets, total);
    }
    let mut neighbors = Vec::with_capacity(8 * graph.edge_count());
    for v in graph.vertices() {
        for &u in csr.neighbors(v) {
            push_u32(&mut neighbors, u.0);
        }
    }
    // Packed label index: directly loadable as the grouped-by-label vertex
    // lists (unlike v1's (label, count) run list, which only cross-checks).
    let classes: Vec<(Label, &[VertexId])> = csr.labels_with_vertices().collect();
    let mut index = Vec::with_capacity(4 * (2 + 2 * classes.len() + n));
    push_u32(&mut index, classes.len() as u32);
    for (l, _) in &classes {
        push_u32(&mut index, l.0);
    }
    let mut start = 0u32;
    push_u32(&mut index, 0);
    for (_, vs) in &classes {
        start += vs.len() as u32;
        push_u32(&mut index, start);
    }
    for (_, vs) in &classes {
        for v in *vs {
            push_u32(&mut index, v.0);
        }
    }

    // Lay the sections out at page-aligned offsets and fill the table.
    let align_up = |x: usize| x.div_ceil(SNAPSHOT_PAGE) * SNAPSHOT_PAGE;
    let payloads = [&labels, &offsets, &neighbors, &index];
    let mut entries: Vec<SectionInfo> = Vec::with_capacity(V2_SECTION_COUNT);
    let mut pos = align_up(V2_HEADER_LEN);
    for (i, payload) in payloads.iter().enumerate() {
        let mut h = StableHasher::new();
        h.write_bytes(payload);
        entries.push(SectionInfo {
            id: i as u32 + 1,
            offset: pos as u64,
            len: payload.len() as u64,
            checksum: h.finish(),
        });
        pos = align_up(pos + payload.len());
    }
    let file_len = entries
        .last()
        .map(|s| (s.offset + s.len) as usize)
        .expect("four sections");

    let mut out = vec![0u8; file_len];
    out[0..8].copy_from_slice(&SNAPSHOT_MAGIC);
    out[8..12].copy_from_slice(&SNAPSHOT_VERSION_V2.to_le_bytes());
    out[12..16].copy_from_slice(&(V2_SECTION_COUNT as u32).to_le_bytes());
    out[16..24].copy_from_slice(&fingerprint.to_le_bytes());
    out[24..28].copy_from_slice(&(n as u32).to_le_bytes());
    out[28..32].copy_from_slice(&(graph.edge_count() as u32).to_le_bytes());
    for (i, entry) in entries.iter().enumerate() {
        let at = V2_FIXED_LEN + i * V2_TABLE_ENTRY_LEN;
        out[at..at + 4].copy_from_slice(&entry.id.to_le_bytes());
        // 4 reserved (zero) bytes keep the u64 fields 8-aligned.
        out[at + 8..at + 16].copy_from_slice(&entry.offset.to_le_bytes());
        out[at + 16..at + 24].copy_from_slice(&entry.len.to_le_bytes());
        out[at + 24..at + 32].copy_from_slice(&entry.checksum.to_le_bytes());
    }
    let mut h = StableHasher::new();
    h.write_bytes(&out[..V2_HEADER_LEN - 8]);
    let header_checksum = h.finish();
    out[V2_HEADER_LEN - 8..V2_HEADER_LEN].copy_from_slice(&header_checksum.to_le_bytes());
    for (entry, payload) in entries.iter().zip(payloads) {
        out[entry.offset as usize..(entry.offset + entry.len) as usize].copy_from_slice(payload);
    }
    out
}

/// Writes `graph` to `path` in the v2 snapshot format, atomically (temp file
/// + fsync + rename; see [`atomic_write`]).
pub fn save_snapshot_v2(path: impl AsRef<Path>, graph: &LabeledGraph) -> Result<(), SnapshotError> {
    let path = path.as_ref();
    atomic_write(path, &snapshot_bytes_v2(graph))
        .map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))
}

/// How [`load_snapshot_v2`] / [`open_snapshot`] back the loaded graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadMode {
    /// Memory-map the file read-only and reinterpret sections in place: pages
    /// fault in on first access, nothing is copied, and the label-index
    /// section stays untouched until used. Falls back to [`LoadMode::Buffered`]
    /// on platforms without `mmap` support.
    #[default]
    Mapped,
    /// Read the whole file into one aligned buffer and reinterpret sections
    /// in place. Same zero-decode layout, but paid for upfront.
    Buffered,
    /// [`LoadMode::Buffered`], plus eager validation of the label-index
    /// section (checksum + structure) with typed errors — the mode that makes
    /// every byte of the file accountable, used by the corruption tests and
    /// anywhere fail-fast beats lazy.
    Eager,
}

/// Decodes a v2 snapshot held in shared storage (a mapping or a buffer) into
/// a frozen, zero-copy [`LabeledGraph`].
fn graph_from_shared(bytes: SharedBytes, eager_index: bool) -> Result<LabeledGraph, SnapshotError> {
    let prefix = &bytes.as_slice()[..bytes.len().min(V2_HEADER_LEN)];
    let info = parse_snapshot_header(prefix, bytes.len() as u64)?;
    if info.version != SNAPSHOT_VERSION_V2 {
        return Err(SnapshotError::UnsupportedVersion(info.version));
    }
    let n = info.vertex_count as usize;
    let e = info.edge_count as usize;

    // Core sections: checksum, reinterpret in place, validate structure.
    let verify = |s: &SectionInfo| -> Result<(), SnapshotError> {
        let mut h = StableHasher::new();
        h.write_bytes(bytes.slice(s.offset as usize, s.len as usize).as_slice());
        let computed = h.finish();
        if computed != s.checksum {
            return Err(SnapshotError::SectionChecksumMismatch {
                section: s.name(),
                stored: s.checksum,
                computed,
            });
        }
        Ok(())
    };
    let [lab, off, nbr, idx] = [
        *info.section(SECTION_LABELS).expect("validated table"),
        *info.section(SECTION_OFFSETS).expect("validated table"),
        *info.section(SECTION_NEIGHBORS).expect("validated table"),
        *info.section(SECTION_LABEL_INDEX).expect("validated table"),
    ];
    verify(&lab)?;
    verify(&off)?;
    verify(&nbr)?;
    let labels: ArcSlice<Label> = bytes
        .typed(lab.offset as usize, n)
        .expect("bounds checked by the section table");
    let offsets: ArcSlice<u32> = bytes
        .typed(off.offset as usize, n + 1)
        .expect("bounds checked by the section table");
    let neighbors: ArcSlice<VertexId> = bytes
        .typed(nbr.offset as usize, 2 * e)
        .expect("bounds checked by the section table");
    validate_csr_structure(n, e, &offsets, &neighbors)?;

    // The label-index section is redundant, so it can stay lazy: hand the
    // undecoded bytes to the CSR index, which checksums + validates them on
    // first use (falling back to a rebuild if they turn out corrupt). Eager
    // mode validates here instead, with typed errors.
    let packed = PackedLabelIndex::new(
        bytes.slice(idx.offset as usize, idx.len as usize),
        idx.checksum,
        info.vertex_count,
    );
    if eager_index {
        verify(&idx)?;
        packed
            .decode(&labels)
            .map_err(SnapshotError::Corrupt)
            .map(|_| ())?;
    }

    let graph = LabeledGraph::from_shared_parts(labels, offsets, neighbors, Some(packed));
    if graph_fingerprint(&graph) != info.fingerprint {
        return Err(SnapshotError::Corrupt(
            "stored fingerprint disagrees with the decoded graph".into(),
        ));
    }
    Ok(graph)
}

/// Decodes a v2 snapshot byte stream (eagerly, from an owned copy). The
/// in-memory counterpart of [`load_snapshot_v2`]; v1 bytes are rejected with
/// [`SnapshotError::UnsupportedVersion`].
pub fn graph_from_snapshot_v2(bytes: &[u8]) -> Result<LabeledGraph, SnapshotError> {
    graph_from_shared(SharedBytes::new(AlignedBuf::from_bytes(bytes)), true)
}

/// Loads a v2 snapshot file, backed according to `mode`. v1 files are
/// rejected with [`SnapshotError::UnsupportedVersion`]; use
/// [`open_snapshot`] to accept both formats.
pub fn load_snapshot_v2(
    path: impl AsRef<Path>,
    mode: LoadMode,
) -> Result<LabeledGraph, SnapshotError> {
    let path = path.as_ref();
    observe_load(|| {
        let io_err = |e: std::io::Error| SnapshotError::Io(format!("{}: {e}", path.display()));
        if let Some(kind) = faultline::check(faultline::FaultSite::DiskRead) {
            // A mapped file is read-only, so corruption faults fall back to a
            // buffered read where the injected damage can actually land; the
            // normal section-checksum validation then classifies it.
            let mut bytes = std::fs::read(path).map_err(io_err)?;
            apply_injected_read_fault(&mut bytes, kind, path)?;
            let eager = matches!(mode, LoadMode::Eager);
            return graph_from_shared(SharedBytes::new(AlignedBuf::from_bytes(&bytes)), eager);
        }
        let mut file = std::fs::File::open(path).map_err(io_err)?;
        match mode {
            LoadMode::Mapped if Mmap::supported() => {
                let map = Mmap::map(&file).map_err(io_err)?;
                graph_from_shared(SharedBytes::new(map), false)
            }
            LoadMode::Mapped | LoadMode::Buffered => {
                let buf = AlignedBuf::read(&mut file).map_err(io_err)?;
                graph_from_shared(SharedBytes::new(buf), false)
            }
            LoadMode::Eager => {
                let buf = AlignedBuf::read(&mut file).map_err(io_err)?;
                graph_from_shared(SharedBytes::new(buf), true)
            }
        }
    })
}

/// Loads a snapshot file of either format: v1 decodes eagerly, v2 is backed
/// according to `mode`. The one-call loader behind catalog restore.
pub fn open_snapshot(
    path: impl AsRef<Path>,
    mode: LoadMode,
) -> Result<LabeledGraph, SnapshotError> {
    let path = path.as_ref();
    match probe_snapshot(path)?.version {
        SNAPSHOT_VERSION => load_snapshot(path),
        _ => load_snapshot_v2(path, mode),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_roundtrip() {
        let g = LabeledGraph::from_parts(&[Label(3), Label(4), Label(3)], &[(0, 1), (1, 2)]);
        let text = write_graph(&g);
        let back = read_graph(&text).expect("parse");
        assert_eq!(back.vertex_count(), 3);
        assert_eq!(back.edge_count(), 2);
        assert_eq!(back.label(VertexId(0)), Label(3));
        assert!(back.has_edge(VertexId(1), VertexId(2)));
    }

    #[test]
    fn database_roundtrip() {
        let g1 = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let g2 = LabeledGraph::from_parts(&[Label(2)], &[]);
        let db = GraphDatabase::new(vec![g1, g2]);
        let text = write_database(&db);
        let back = read_database(&text).expect("parse");
        assert_eq!(back.len(), 2);
        assert_eq!(back.graphs()[0].edge_count(), 1);
        assert_eq!(back.graphs()[1].vertex_count(), 1);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hello\n\nv 0 7\nv 1 8\ne 0 1\n";
        let g = read_graph(text).expect("parse");
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn unknown_record_is_an_error() {
        assert!(matches!(
            read_graph("x 1 2"),
            Err(ParseError::UnknownRecord(_))
        ));
    }

    #[test]
    fn out_of_order_vertex_is_an_error() {
        assert!(matches!(read_graph("v 5 0"), Err(ParseError::BadVertex(_))));
    }

    #[test]
    fn edge_to_unknown_vertex_is_an_error() {
        assert!(matches!(
            read_graph("v 0 1\ne 0 9"),
            Err(ParseError::BadVertex(_))
        ));
    }

    #[test]
    fn bad_number_is_an_error() {
        assert!(matches!(
            read_graph("v zero 1"),
            Err(ParseError::BadNumber(_))
        ));
        assert!(matches!(read_graph("v 0"), Err(ParseError::BadNumber(_))));
    }

    fn snapshot_sample() -> LabeledGraph {
        LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(1), Label(0), Label(7)],
            &[(0, 1), (0, 2), (2, 3), (1, 3)],
        )
    }

    #[test]
    fn snapshot_roundtrip_is_byte_identical() {
        let g = snapshot_sample();
        let bytes = snapshot_bytes(&g);
        let back = graph_from_snapshot(&bytes).expect("decode");
        assert_eq!(back.vertex_count(), g.vertex_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.labels(), g.labels());
        for v in g.vertices() {
            assert_eq!(back.neighbors(v), g.neighbors(v));
        }
        // Save → load → re-save produces identical bytes, and the stored
        // fingerprint survives the trip.
        assert_eq!(snapshot_bytes(&back), bytes);
        assert_eq!(
            snapshot_fingerprint(&bytes).expect("header"),
            graph_fingerprint(&back)
        );
    }

    #[test]
    fn empty_graph_snapshots() {
        let g = LabeledGraph::new();
        let bytes = snapshot_bytes(&g);
        let back = graph_from_snapshot(&bytes).expect("decode");
        assert_eq!(back.vertex_count(), 0);
        assert_eq!(back.edge_count(), 0);
        assert_eq!(snapshot_bytes(&back), bytes);
    }

    #[test]
    fn snapshot_rejects_bad_magic_and_version() {
        let mut bytes = snapshot_bytes(&snapshot_sample());
        bytes[0] = b'X';
        assert!(matches!(
            graph_from_snapshot(&bytes),
            Err(SnapshotError::BadMagic)
        ));
        let mut bytes = snapshot_bytes(&snapshot_sample());
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            graph_from_snapshot(&bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncated_snapshot_is_a_typed_error() {
        let bytes = snapshot_bytes(&snapshot_sample());
        // Every truncation point must produce an error, never a panic. Short
        // prefixes fail as Truncated; payload-shortening also breaks the
        // checksum first — either way a typed error.
        for len in 0..bytes.len() {
            assert!(
                graph_from_snapshot(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn bit_flipped_snapshot_is_a_typed_error() {
        let bytes = snapshot_bytes(&snapshot_sample());
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x20;
            assert!(
                graph_from_snapshot(&corrupt).is_err(),
                "flip at byte {i} decoded"
            );
        }
    }

    #[test]
    fn structural_corruption_is_reported_after_a_checksum_fixup() {
        // Forge a payload with an asymmetric edge and a matching checksum: the
        // structural validator, not just the checksum, must catch it.
        let g = snapshot_sample();
        let mut bytes = snapshot_bytes(&g);
        let payload_start = 28;
        // neighbors section starts after counts (8) + labels (5*4) + offsets (6*4).
        let neighbors_at = payload_start + 8 + 20 + 24;
        bytes[neighbors_at..neighbors_at + 4].copy_from_slice(&3u32.to_le_bytes());
        let mut h = StableHasher::new();
        h.write_bytes(&bytes[payload_start..]);
        bytes[12..20].copy_from_slice(&h.finish().to_le_bytes());
        match graph_from_snapshot(&bytes) {
            Err(SnapshotError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_file_helpers_roundtrip() {
        let g = snapshot_sample();
        let dir = std::env::temp_dir().join(format!("spidermine-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("sample.snap");
        save_snapshot(&path, &g).expect("save");
        let back = load_snapshot(&path).expect("load");
        assert_eq!(snapshot_bytes(&back), snapshot_bytes(&g));
        std::fs::remove_dir_all(&dir).ok();
        assert!(matches!(
            load_snapshot(dir.join("missing.snap")),
            Err(SnapshotError::Io(_))
        ));
    }

    // -- format v2 ----------------------------------------------------------

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("spidermine-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn graphs_equal(a: &LabeledGraph, b: &LabeledGraph) {
        assert_eq!(a.vertex_count(), b.vertex_count());
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.labels(), b.labels());
        for v in a.vertices() {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
        assert_eq!(graph_fingerprint(a), graph_fingerprint(b));
    }

    #[test]
    fn v2_roundtrip_and_determinism() {
        let g = snapshot_sample();
        let bytes = snapshot_bytes_v2(&g);
        let back = graph_from_snapshot_v2(&bytes).expect("decode");
        graphs_equal(&g, &back);
        // Deterministic writer, and re-encoding the loaded graph reproduces
        // the file byte for byte.
        assert_eq!(snapshot_bytes_v2(&back), bytes);
        // The label index decoded from the packed section answers queries.
        assert_eq!(
            back.vertices_with_label(Label(1)),
            g.vertices_with_label(Label(1))
        );
        assert_eq!(
            back.neighbor_label_histogram(VertexId(0)),
            g.neighbor_label_histogram(VertexId(0))
        );
    }

    #[test]
    fn v2_empty_graph_roundtrips() {
        let g = LabeledGraph::new();
        let bytes = snapshot_bytes_v2(&g);
        let back = graph_from_snapshot_v2(&bytes).expect("decode");
        assert_eq!(back.vertex_count(), 0);
        assert_eq!(snapshot_bytes_v2(&back), bytes);
    }

    #[test]
    fn v2_sections_are_page_aligned() {
        let bytes = snapshot_bytes_v2(&snapshot_sample());
        let info = parse_snapshot_header(&bytes[..V2_HEADER_LEN], bytes.len() as u64)
            .expect("valid header");
        assert_eq!(info.version, SNAPSHOT_VERSION_V2);
        assert_eq!(info.sections.len(), 4);
        for s in &info.sections {
            assert_eq!(
                s.offset as usize % SNAPSHOT_PAGE,
                0,
                "{} misaligned",
                s.name()
            );
        }
        let names: Vec<_> = info.sections.iter().map(SectionInfo::name).collect();
        assert_eq!(names, ["labels", "csr-offsets", "neighbors", "label-index"]);
    }

    #[test]
    fn cross_version_loads_are_typed_rejections() {
        let g = snapshot_sample();
        // v1 reader fed v2 bytes.
        assert!(matches!(
            graph_from_snapshot(&snapshot_bytes_v2(&g)),
            Err(SnapshotError::UnsupportedVersion(2))
        ));
        // v2 reader fed v1 bytes.
        assert!(matches!(
            graph_from_snapshot_v2(&snapshot_bytes(&g)),
            Err(SnapshotError::UnsupportedVersion(1))
        ));
    }

    #[test]
    fn probe_reads_both_formats_without_decoding() {
        let g = snapshot_sample();
        let dir = temp_dir("probe");
        let v1 = dir.join("g.snap");
        let v2 = dir.join("g.snap2");
        save_snapshot(&v1, &g).expect("save v1");
        save_snapshot_v2(&v2, &g).expect("save v2");
        let fp = graph_fingerprint(&g);
        let info1 = probe_snapshot(&v1).expect("probe v1");
        assert_eq!((info1.version, info1.fingerprint), (1, fp));
        assert_eq!(info1.vertex_count, 5);
        assert_eq!(info1.edge_count, 4);
        assert!(info1.sections.is_empty());
        let info2 = probe_snapshot(&v2).expect("probe v2");
        assert_eq!((info2.version, info2.fingerprint), (2, fp));
        assert_eq!(info2.vertex_count, 5);
        assert_eq!(info2.edge_count, 4);
        assert_eq!(info2.sections.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn probe_rejects_truncated_headers() {
        let g = snapshot_sample();
        let dir = temp_dir("probe-trunc");
        let bytes = snapshot_bytes_v2(&g);
        // Cut the file inside the section table.
        for cut in [0, 4, 11, 40, V2_HEADER_LEN - 1] {
            let path = dir.join(format!("cut-{cut}.snap2"));
            std::fs::write(&path, &bytes[..cut]).expect("write");
            assert!(
                matches!(probe_snapshot(&path), Err(SnapshotError::Truncated { .. })),
                "cut at {cut} probed"
            );
        }
        // Header intact but a section cut off: the table bounds-check fails.
        let path = dir.join("short-section.snap2");
        std::fs::write(&path, &bytes[..bytes.len() - 1]).expect("write");
        assert!(matches!(
            probe_snapshot(&path),
            Err(SnapshotError::Truncated { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Re-signs a forged v2 header so only section-level validation can catch
    /// the forgery.
    fn resign_v2_header(bytes: &mut [u8]) {
        let mut h = StableHasher::new();
        h.write_bytes(&bytes[..V2_HEADER_LEN - 8]);
        bytes[V2_HEADER_LEN - 8..V2_HEADER_LEN].copy_from_slice(&h.finish().to_le_bytes());
    }

    #[test]
    fn v2_bit_flip_in_each_section_names_that_section() {
        let g = snapshot_sample();
        let bytes = snapshot_bytes_v2(&g);
        let info =
            parse_snapshot_header(&bytes[..V2_HEADER_LEN], bytes.len() as u64).expect("header");
        for s in &info.sections {
            if s.len == 0 {
                continue;
            }
            let mut corrupt = bytes.clone();
            corrupt[s.offset as usize] ^= 0x10;
            match graph_from_snapshot_v2(&corrupt) {
                Err(SnapshotError::SectionChecksumMismatch { section, .. }) => {
                    assert_eq!(section, s.name(), "wrong section blamed");
                }
                other => panic!("flip in {} gave {other:?}", s.name()),
            }
        }
    }

    #[test]
    fn v2_header_bit_flip_is_caught_by_header_checksum() {
        let bytes = snapshot_bytes_v2(&snapshot_sample());
        for at in [8usize, 13, 17, 25, 40, 100, 159] {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= 0x01;
            let result = graph_from_snapshot_v2(&corrupt);
            assert!(result.is_err(), "header flip at {at} decoded");
        }
    }

    #[test]
    fn v2_misaligned_section_offset_is_typed() {
        let mut bytes = snapshot_bytes_v2(&snapshot_sample());
        // Nudge the neighbors section offset off the page boundary and
        // re-sign the header so only the alignment check can object.
        let entry_at = V2_FIXED_LEN + 2 * V2_TABLE_ENTRY_LEN;
        let offset = u64::from_le_bytes(bytes[entry_at + 8..entry_at + 16].try_into().expect("8"));
        bytes[entry_at + 8..entry_at + 16].copy_from_slice(&(offset + 4).to_le_bytes());
        resign_v2_header(&mut bytes);
        match graph_from_snapshot_v2(&bytes) {
            Err(SnapshotError::MisalignedSection { section, offset: o }) => {
                assert_eq!(section, "neighbors");
                assert_eq!(o, offset + 4);
            }
            other => panic!("expected MisalignedSection, got {other:?}"),
        }
    }

    #[test]
    fn v2_forged_fingerprint_is_caught() {
        let mut bytes = snapshot_bytes_v2(&snapshot_sample());
        bytes[16..24].copy_from_slice(&0xdead_beefu64.to_le_bytes());
        resign_v2_header(&mut bytes);
        match graph_from_snapshot_v2(&bytes) {
            Err(SnapshotError::Corrupt(m)) => assert!(m.contains("fingerprint"), "{m}"),
            other => panic!("expected Corrupt(fingerprint), got {other:?}"),
        }
    }

    #[test]
    fn v2_truncation_sweep_never_panics() {
        let bytes = snapshot_bytes_v2(&snapshot_sample());
        // Sample truncation points across header, table, padding, sections.
        let mut cuts: Vec<usize> = (0..V2_HEADER_LEN).step_by(7).collect();
        cuts.extend((V2_HEADER_LEN..bytes.len()).step_by(613));
        for cut in cuts {
            assert!(
                graph_from_snapshot_v2(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn v2_file_load_modes_agree() {
        let g = snapshot_sample();
        let dir = temp_dir("modes");
        let path = dir.join("g.snap2");
        save_snapshot_v2(&path, &g).expect("save");
        for mode in [LoadMode::Mapped, LoadMode::Buffered, LoadMode::Eager] {
            let back = load_snapshot_v2(&path, mode).expect("load");
            graphs_equal(&g, &back);
            assert_eq!(
                back.vertices_with_label(Label(0)),
                g.vertices_with_label(Label(0)),
                "label index under {mode:?}"
            );
            // The loaded graph re-snapshots identically in both formats.
            assert_eq!(snapshot_bytes_v2(&back), snapshot_bytes_v2(&g));
            assert_eq!(snapshot_bytes(&back), snapshot_bytes(&g));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_snapshot_dispatches_on_version() {
        let g = snapshot_sample();
        let dir = temp_dir("open");
        let v1 = dir.join("g.snap");
        let v2 = dir.join("g.snap2");
        save_snapshot(&v1, &g).expect("save v1");
        save_snapshot_v2(&v2, &g).expect("save v2");
        graphs_equal(&g, &open_snapshot(&v1, LoadMode::Mapped).expect("open v1"));
        graphs_equal(&g, &open_snapshot(&v2, LoadMode::Mapped).expect("open v2"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mapped_load_with_corrupt_label_index_falls_back_to_rebuild() {
        let g = snapshot_sample();
        let mut bytes = snapshot_bytes_v2(&g);
        let info =
            parse_snapshot_header(&bytes[..V2_HEADER_LEN], bytes.len() as u64).expect("header");
        let idx = *info.section(SECTION_LABEL_INDEX).expect("section");
        bytes[idx.offset as usize + 5] ^= 0xff;
        let dir = temp_dir("lazy-fallback");
        let path = dir.join("g.snap2");
        std::fs::write(&path, &bytes).expect("write");
        // Eager load objects with a typed error…
        assert!(matches!(
            load_snapshot_v2(&path, LoadMode::Eager),
            Err(SnapshotError::SectionChecksumMismatch {
                section: "label-index",
                ..
            })
        ));
        // …but the lazy modes self-heal: the section is redundant, so the
        // index is rebuilt from the (validated) labels section on first use.
        for mode in [LoadMode::Mapped, LoadMode::Buffered] {
            let back = load_snapshot_v2(&path, mode).expect("lazy load");
            assert_eq!(
                back.vertices_with_label(Label(1)),
                g.vertices_with_label(Label(1))
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp_files() {
        let dir = temp_dir("atomic");
        let path = dir.join("file.bin");
        atomic_write(&path, b"first").expect("write");
        atomic_write(&path, b"second").expect("overwrite");
        assert_eq!(std::fs::read(&path).expect("read"), b"second");
        let names: Vec<String> = std::fs::read_dir(&dir)
            .expect("dir")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["file.bin"], "temp residue left: {names:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
