//! Vertex labels and label interning.
//!
//! The miners treat labels as opaque dense integers ([`Label`]); the
//! [`LabelInterner`] maps human-readable names (author seniority classes,
//! Java class names, …) to those integers and back.

use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A vertex label. Labels are dense small integers; equality of labels is the
/// only thing pattern matching ever looks at.
///
/// `#[repr(transparent)]` over `u32` is a load-bearing guarantee: the binary
/// snapshot format stores label sections as little-endian `u32` arrays and
/// reinterprets them in place (zero-copy) through [`crate::shared::Word`].
#[repr(transparent)]
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Label(pub u32);

// SAFETY: repr(transparent) over u32 — size 4, align 4, all bit patterns valid.
unsafe impl crate::shared::Word for Label {
    #[inline]
    fn from_u32(raw: u32) -> Self {
        Label(raw)
    }
}

impl Label {
    /// Returns the raw label id.
    #[inline]
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Label {
    fn from(v: u32) -> Self {
        Label(v)
    }
}

/// Bidirectional map between label names and [`Label`] ids.
///
/// Interning is stable: the first name interned gets id 0, the next id 1, …
/// so a graph built through the same interner is reproducible.
#[derive(Clone, Debug, Default)]
pub struct LabelInterner {
    by_name: FxHashMap<String, Label>,
    names: Vec<String>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its label id (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&l) = self.by_name.get(name) {
            return l;
        }
        let l = Label(self.names.len() as u32);
        self.by_name.insert(name.to_owned(), l);
        self.names.push(name.to_owned());
        l
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<Label> {
        self.by_name.get(name).copied()
    }

    /// Returns the name of `label`, if it was interned through this interner.
    pub fn name(&self, label: Label) -> Option<&str> {
        self.names.get(label.0 as usize).map(String::as_str)
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(Label, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Label(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable_and_idempotent() {
        let mut it = LabelInterner::new();
        let a = it.intern("Prolific");
        let b = it.intern("Senior");
        let a2 = it.intern("Prolific");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a, Label(0));
        assert_eq!(b, Label(1));
        assert_eq!(it.name(a), Some("Prolific"));
        assert_eq!(it.name(b), Some("Senior"));
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn get_does_not_intern() {
        let mut it = LabelInterner::new();
        assert!(it.get("x").is_none());
        it.intern("x");
        assert_eq!(it.get("x"), Some(Label(0)));
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut it = LabelInterner::new();
        for n in ["a", "b", "c"] {
            it.intern(n);
        }
        let collected: Vec<_> = it.iter().map(|(l, n)| (l.id(), n.to_owned())).collect();
        assert_eq!(
            collected,
            vec![
                (0, "a".to_owned()),
                (1, "b".to_owned()),
                (2, "c".to_owned())
            ]
        );
    }

    #[test]
    fn label_display_and_debug() {
        assert_eq!(format!("{}", Label(7)), "7");
        assert_eq!(format!("{:?}", Label(7)), "L7");
        assert_eq!(Label::from(3u32), Label(3));
        assert_eq!(Label(3).id(), 3);
    }
}
