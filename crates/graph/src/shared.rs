//! Reference-counted immutable slices over shared byte storage.
//!
//! The snapshot format v2 (`io`) lays fixed-width little-endian `u32` arrays
//! out on disk so that the on-disk bytes *are* the in-memory representation.
//! This module provides the two types that make that zero-copy story safe:
//!
//! * [`SharedBytes`] — an immutable byte region kept alive by an `Arc`'d
//!   owner (a memory mapping, an aligned read buffer, or a plain `Vec<u8>`).
//!   Sub-slicing is O(1) and shares the owner.
//! * [`ArcSlice<T>`] — a typed view (`Deref<Target = [T]>`) into such a
//!   region, or into an owned `Vec<T>`. Cloning is an `Arc` bump; dropping
//!   the last clone releases the backing storage (unmapping the file if it
//!   was a mapping).
//!
//! The typed reinterpretation is restricted to [`Word`] types — `u32`-sized,
//! `#[repr(transparent)]` newtypes over `u32` ([`VertexId`](crate::VertexId),
//! [`Label`](crate::Label)) plus `u32` itself — and is only performed
//! in-place on little-endian targets, where the on-disk encoding matches the
//! native one. On big-endian targets [`SharedBytes::typed`] decodes into an
//! owned buffer instead; every caller gets the same `&[T]` semantics either
//! way, just without the sharing.

use std::any::Any;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Marker for types that can be reinterpreted from little-endian `u32`s.
///
/// # Safety
///
/// Implementors must be `#[repr(transparent)]` wrappers over `u32` (or `u32`
/// itself): size 4, alignment 4, no padding, every bit pattern valid.
pub unsafe trait Word: Copy + Send + Sync + 'static {
    /// Builds the value from a raw little-endian-decoded `u32`.
    fn from_u32(raw: u32) -> Self;
}

// SAFETY: u32 trivially satisfies the contract.
unsafe impl Word for u32 {
    #[inline]
    fn from_u32(raw: u32) -> Self {
        raw
    }
}

/// The owner keeping a byte region alive: any `Send + Sync` storage.
type Owner = Arc<dyn Any + Send + Sync>;

/// An immutable, reference-counted byte region.
///
/// Constructed from any storage that yields `&[u8]` (a `Vec<u8>`, an
/// [`mmap_lite::Mmap`], an [`mmap_lite::AlignedBuf`]); sub-slicing shares the
/// owner without copying.
#[derive(Clone)]
pub struct SharedBytes {
    owner: Owner,
    ptr: *const u8,
    len: usize,
}

// SAFETY: the region is immutable and the owner is Send + Sync; handing
// &[u8] views to other threads is as safe as sharing a frozen Vec<u8>.
unsafe impl Send for SharedBytes {}
unsafe impl Sync for SharedBytes {}

impl SharedBytes {
    /// Wraps `storage` (taking ownership) as a shared immutable region.
    pub fn new<S>(storage: S) -> Self
    where
        S: Deref<Target = [u8]> + Any + Send + Sync,
    {
        let owner: Arc<S> = Arc::new(storage);
        let slice: &[u8] = &owner;
        let (ptr, len) = (slice.as_ptr(), slice.len());
        Self {
            owner: owner as Owner,
            ptr,
            len,
        }
    }

    /// An empty region with a trivial owner.
    pub fn empty() -> Self {
        Self::new(Vec::new())
    }

    /// The bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: ptr/len were captured from the owner's stable heap (or
        // mapped) storage, which `self.owner` keeps alive.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the region is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// O(1) sub-region sharing the same owner.
    ///
    /// # Panics
    /// Panics if the range is out of bounds (callers bound-check with typed
    /// errors first; this is the internal slip-proof).
    pub fn slice(&self, offset: usize, len: usize) -> SharedBytes {
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= self.len),
            "SharedBytes::slice out of bounds: {offset}+{len} > {}",
            self.len
        );
        Self {
            owner: self.owner.clone(),
            // SAFETY: offset <= self.len, so the result stays inside (or one
            // past) the owned region.
            ptr: unsafe { self.ptr.add(offset) },
            len,
        }
    }

    /// Reinterprets `count` little-endian `T`s starting at `byte_offset`.
    ///
    /// Zero-copy on little-endian targets when the data is 4-byte aligned;
    /// decoded into an owned buffer otherwise (big-endian targets, or an
    /// unaligned source such as a plain `Vec<u8>` sub-range). Returns `None`
    /// if the range is out of bounds — callers translate that into their own
    /// typed truncation errors.
    pub fn typed<T: Word>(&self, byte_offset: usize, count: usize) -> Option<ArcSlice<T>> {
        let bytes = count.checked_mul(4)?;
        let end = byte_offset.checked_add(bytes)?;
        if end > self.len {
            return None;
        }
        let region = self.slice(byte_offset, bytes);
        if cfg!(target_endian = "little") && (region.ptr as usize).is_multiple_of(4) {
            Some(ArcSlice {
                owner: region.owner,
                ptr: region.ptr as *const T,
                len: count,
            })
        } else {
            // Portable decode: byte-exact semantics, owned storage.
            let decoded: Vec<T> = region
                .as_slice()
                .chunks_exact(4)
                .map(|c| T::from_u32(u32::from_le_bytes(c.try_into().expect("4 bytes"))))
                .collect();
            Some(ArcSlice::from_vec(decoded))
        }
    }
}

impl fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedBytes({} bytes)", self.len)
    }
}

/// An immutable, cheaply clonable typed slice.
///
/// Either a view into [`SharedBytes`] storage (zero-copy) or an owned
/// `Vec<T>` promoted into shared ownership; `Deref`s to `&[T]` with no
/// branching on the hot path.
pub struct ArcSlice<T> {
    owner: Owner,
    ptr: *const T,
    len: usize,
}

// SAFETY: same argument as SharedBytes — immutable data, Send + Sync owner.
unsafe impl<T: Send + Sync> Send for ArcSlice<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSlice<T> {}

impl<T: 'static + Send + Sync> ArcSlice<T> {
    /// Promotes an owned vector into a shared slice (no copy; the `Vec`'s
    /// heap buffer becomes the shared storage).
    pub fn from_vec(v: Vec<T>) -> Self {
        let owner: Arc<Vec<T>> = Arc::new(v);
        let (ptr, len) = (owner.as_ptr(), owner.len());
        Self {
            owner: owner as Owner,
            ptr,
            len,
        }
    }

    /// An empty slice.
    pub fn empty() -> Self {
        Self::from_vec(Vec::new())
    }
}

impl<T> ArcSlice<T> {
    /// The elements.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: ptr/len describe initialized, immutable storage kept alive
        // by self.owner.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T> Clone for ArcSlice<T> {
    fn clone(&self) -> Self {
        Self {
            owner: self.owner.clone(),
            ptr: self.ptr,
            len: self.len,
        }
    }
}

impl<T> Deref for ArcSlice<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: fmt::Debug> fmt::Debug for ArcSlice<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl<T: 'static + Send + Sync> From<Vec<T>> for ArcSlice<T> {
    fn from(v: Vec<T>) -> Self {
        Self::from_vec(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_bytes_slices_share_the_owner() {
        let data: Vec<u8> = (0..64u8).collect();
        let all = SharedBytes::new(data);
        let mid = all.slice(16, 8);
        assert_eq!(mid.as_slice(), &(16..24u8).collect::<Vec<_>>()[..]);
        drop(all);
        // The sub-slice keeps the storage alive on its own.
        assert_eq!(mid.len(), 8);
        assert_eq!(mid.as_slice()[0], 16);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn shared_bytes_slice_bounds_checked() {
        SharedBytes::new(vec![0u8; 8]).slice(4, 8);
    }

    #[test]
    fn typed_views_decode_little_endian_words() {
        let words: Vec<u32> = vec![7, 0xdead_beef, 42];
        let mut bytes = Vec::new();
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let shared = SharedBytes::new(bytes);
        let typed: ArcSlice<u32> = shared.typed(0, 3).expect("in bounds");
        assert_eq!(&*typed, &words[..]);
        // Offset views and out-of-bounds checks.
        let tail: ArcSlice<u32> = shared.typed(4, 2).expect("in bounds");
        assert_eq!(&*tail, &words[1..]);
        assert!(shared.typed::<u32>(0, 4).is_none(), "past the end");
        assert!(shared.typed::<u32>(usize::MAX, 1).is_none(), "overflow");
    }

    #[test]
    fn typed_view_survives_dropping_the_shared_handle() {
        let shared = SharedBytes::new(vec![1u8, 0, 0, 0, 2, 0, 0, 0]);
        let typed: ArcSlice<u32> = shared.typed(0, 2).expect("in bounds");
        drop(shared);
        assert_eq!(&*typed, &[1, 2]);
    }

    #[test]
    fn arc_slice_from_vec_and_clone() {
        let s = ArcSlice::from_vec(vec![5u32, 6, 7]);
        let t = s.clone();
        drop(s);
        assert_eq!(&*t, &[5, 6, 7]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!(ArcSlice::<u32>::empty().is_empty());
    }

    #[test]
    fn unaligned_typed_view_falls_back_to_decoding() {
        // 1 padding byte then two u32s: the 4-byte alignment of the source
        // cannot be guaranteed, so the view must still read correctly.
        let mut bytes = vec![0xffu8];
        bytes.extend_from_slice(&9u32.to_le_bytes());
        bytes.extend_from_slice(&10u32.to_le_bytes());
        let shared = SharedBytes::new(bytes);
        let typed: ArcSlice<u32> = shared.typed(1, 2).expect("in bounds");
        assert_eq!(&*typed, &[9, 10]);
    }
}
