//! Breadth-first traversal, shortest distances, diameter/radius and
//! connected components.
//!
//! SpiderMine is built around *r-bounded* neighborhoods (Definition 4) and a
//! *diameter bound* `Dmax` (Definition 2); every one of those notions reduces
//! to the BFS primitives in this module.

use crate::graph::{LabeledGraph, VertexId};
use std::collections::VecDeque;

/// Distance value meaning "unreachable".
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances from `source` to every vertex.
///
/// Unreachable vertices get [`UNREACHABLE`].
pub fn bfs_distances(graph: &LabeledGraph, source: VertexId) -> Vec<u32> {
    bfs_distances_bounded(graph, source, u32::MAX)
}

/// Single-source BFS distances, truncated at `max_depth`.
///
/// Vertices farther than `max_depth` (or unreachable) get [`UNREACHABLE`].
pub fn bfs_distances_bounded(graph: &LabeledGraph, source: VertexId, max_depth: u32) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; graph.vertex_count()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        if du >= max_depth {
            continue;
        }
        for &v in graph.neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Vertices within distance `radius` of `source` (including `source`),
/// in BFS order.
pub fn ball(graph: &LabeledGraph, source: VertexId, radius: u32) -> Vec<VertexId> {
    let dist = bfs_distances_bounded(graph, source, radius);
    let mut out: Vec<VertexId> = Vec::new();
    // BFS order is not preserved by the distance array; re-walk in order.
    let mut queue = VecDeque::new();
    let mut seen = vec![false; graph.vertex_count()];
    queue.push_back(source);
    seen[source.index()] = true;
    while let Some(u) = queue.pop_front() {
        out.push(u);
        if dist[u.index()] >= radius {
            continue;
        }
        for &v in graph.neighbors(u) {
            if !seen[v.index()] && dist[v.index()] != UNREACHABLE {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    out
}

/// Eccentricity of `v`: the maximum shortest distance from `v` to any vertex
/// reachable from it. Returns 0 for an isolated vertex.
pub fn eccentricity(graph: &LabeledGraph, v: VertexId) -> u32 {
    bfs_distances(graph, v)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// Exact diameter of the graph, computed as the maximum eccentricity over all
/// vertices, ignoring unreachable pairs (i.e. the maximum intra-component
/// diameter). This is `O(|V| · (|V| + |E|))`; use it on *patterns*, not on the
/// massive input network.
pub fn diameter(graph: &LabeledGraph) -> u32 {
    graph
        .vertices()
        .map(|v| eccentricity(graph, v))
        .max()
        .unwrap_or(0)
}

/// Radius of the graph: minimum eccentricity over all vertices.
pub fn radius(graph: &LabeledGraph) -> u32 {
    graph
        .vertices()
        .map(|v| eccentricity(graph, v))
        .min()
        .unwrap_or(0)
}

/// Checks whether `graph` is r-bounded from `head`: every vertex is reachable
/// from `head` within distance `r` (Definition 4 / the "r-spider" condition).
pub fn is_r_bounded_from(graph: &LabeledGraph, head: VertexId, r: u32) -> bool {
    bfs_distances_bounded(graph, head, r)
        .iter()
        .all(|&d| d != UNREACHABLE)
}

/// True if the graph is connected (the empty graph counts as connected).
pub fn is_connected(graph: &LabeledGraph) -> bool {
    if graph.vertex_count() == 0 {
        return true;
    }
    bfs_distances(graph, VertexId(0))
        .iter()
        .all(|&d| d != UNREACHABLE)
}

/// Connected components, each a sorted list of vertex ids.
pub fn connected_components(graph: &LabeledGraph) -> Vec<Vec<VertexId>> {
    let mut comp = vec![usize::MAX; graph.vertex_count()];
    let mut components: Vec<Vec<VertexId>> = Vec::new();
    for start in graph.vertices() {
        if comp[start.index()] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut members = Vec::new();
        let mut queue = VecDeque::new();
        comp[start.index()] = id;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            members.push(u);
            for &v in graph.neighbors(u) {
                if comp[v.index()] == usize::MAX {
                    comp[v.index()] = id;
                    queue.push_back(v);
                }
            }
        }
        members.sort_unstable();
        components.push(members);
    }
    components
}

/// An estimate of the "effective diameter" (the q-quantile of the pairwise
/// distance distribution) computed from `samples` BFS sources.
///
/// The paper cites effective-diameter bounds (DBLP ≤ 9, IMDB ≤ 10) to justify
/// the `Dmax` parameter; this helper lets users gauge `Dmax` for their own
/// network the same way.
pub fn effective_diameter_estimate(graph: &LabeledGraph, quantile: f64, samples: usize) -> u32 {
    assert!(
        (0.0..=1.0).contains(&quantile),
        "quantile must be in [0, 1]"
    );
    let n = graph.vertex_count();
    if n == 0 {
        return 0;
    }
    let mut distances: Vec<u32> = Vec::new();
    let step = (n / samples.max(1)).max(1);
    for idx in (0..n).step_by(step) {
        let dist = bfs_distances(graph, VertexId(idx as u32));
        distances.extend(dist.into_iter().filter(|&d| d != UNREACHABLE && d > 0));
    }
    if distances.is_empty() {
        return 0;
    }
    distances.sort_unstable();
    let pos = ((distances.len() - 1) as f64 * quantile).round() as usize;
    distances[pos]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    /// Path graph v0 - v1 - v2 - v3.
    fn path4() -> LabeledGraph {
        LabeledGraph::from_parts(&[Label(0); 4], &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path4();
        let d = bfs_distances(&g, VertexId(0));
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bounded_bfs_truncates() {
        let g = path4();
        let d = bfs_distances_bounded(&g, VertexId(0), 2);
        assert_eq!(d, vec![0, 1, 2, UNREACHABLE]);
    }

    #[test]
    fn ball_contains_exactly_r_neighborhood() {
        let g = path4();
        let b = ball(&g, VertexId(1), 1);
        let mut ids: Vec<u32> = b.iter().map(|v| v.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn diameter_and_radius_of_path() {
        let g = path4();
        assert_eq!(diameter(&g), 3);
        assert_eq!(radius(&g), 2);
        assert_eq!(eccentricity(&g, VertexId(0)), 3);
        assert_eq!(eccentricity(&g, VertexId(1)), 2);
    }

    #[test]
    fn r_bounded_checks() {
        let g = path4();
        assert!(is_r_bounded_from(&g, VertexId(1), 2));
        assert!(!is_r_bounded_from(&g, VertexId(0), 2));
        assert!(is_r_bounded_from(&g, VertexId(0), 3));
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = LabeledGraph::from_parts(&[Label(0); 5], &[(0, 1), (2, 3)]);
        assert!(!is_connected(&g));
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![VertexId(0), VertexId(1)]);
        assert_eq!(comps[1], vec![VertexId(2), VertexId(3)]);
        assert_eq!(comps[2], vec![VertexId(4)]);
    }

    #[test]
    fn connected_graph_has_one_component() {
        let g = path4();
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).len(), 1);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = LabeledGraph::new();
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), 0);
        assert_eq!(radius(&g), 0);
        assert_eq!(effective_diameter_estimate(&g, 0.9, 4), 0);
    }

    #[test]
    fn effective_diameter_of_path_is_full_diameter_at_q1() {
        let g = path4();
        assert_eq!(effective_diameter_estimate(&g, 1.0, 4), 3);
        assert!(effective_diameter_estimate(&g, 0.5, 4) <= 3);
    }
}
