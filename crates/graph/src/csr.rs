//! Frozen CSR (compressed sparse row) view of a [`LabeledGraph`].
//!
//! The mutable [`LabeledGraph`] builder stores one `Vec<VertexId>` per vertex,
//! which is convenient for incremental construction but poor for the matcher's
//! access pattern: candidate generation walks many adjacency lists and label
//! classes per search node, so pointer-chasing and per-vertex allocations
//! dominate. [`CsrIndex`] freezes the graph into three flat structures:
//!
//! * **Adjacency CSR** — `offsets` / `neighbors`: all adjacency lists in one
//!   contiguous array, each row sorted by vertex id.
//! * **Label index** — all vertices grouped by label
//!   ([`CsrIndex::vertices_with_label`]), the unanchored-candidate source for
//!   the VF2 matcher (replacing a full host scan).
//! * **Neighbor-label histograms** — per vertex, the sorted `(label, count)`
//!   multiset of its neighbors' labels ([`CsrIndex::neighbor_label_histogram`]),
//!   the workhorse of Stage-I spider mining and of the matcher's capacity
//!   pruning.
//!
//! The index is built lazily by [`LabeledGraph::csr`] and cached; any mutation
//! of the graph invalidates the cache. See `DESIGN.md` § "CSR graph core".

use crate::graph::{LabeledGraph, VertexId};
use crate::iso::SearchPlan;
use crate::label::Label;
use rustc_hash::FxHashMap;
use std::sync::OnceLock;

/// Label ids below this bound get a dense (array-indexed) label index; rarer,
/// sparser id spaces fall back to a hash map. All the paper's workloads use
/// small dense label spaces, so the dense path is the common one.
const DENSE_LABEL_BOUND: u32 = 1 << 20;

/// Vertices grouped by label: either dense offsets over label ids or a sparse
/// map, both yielding sorted vertex-id slices.
enum LabelIndex {
    Dense {
        /// `offsets[l] .. offsets[l + 1]` indexes `vertices` for label `l`.
        offsets: Vec<u32>,
        vertices: Vec<VertexId>,
    },
    Sparse {
        by_label: FxHashMap<Label, Vec<VertexId>>,
        /// Distinct labels in ascending order (for deterministic iteration).
        labels: Vec<Label>,
    },
}

/// The frozen, flat, read-optimized form of a [`LabeledGraph`].
pub struct CsrIndex {
    /// Row offsets into `neighbors`; length `|V| + 1`.
    offsets: Vec<u32>,
    /// Concatenated sorted adjacency lists.
    neighbors: Vec<VertexId>,
    /// Vertices grouped by label.
    label_index: LabelIndex,
    /// Row offsets into `hist_entries`; length `|V| + 1`.
    hist_offsets: Vec<u32>,
    /// Concatenated per-vertex neighbor-label histograms, each row sorted by
    /// label.
    hist_entries: Vec<(Label, u32)>,
    /// Cached VF2 search plans when this graph is used as a *pattern*:
    /// `[non-induced, induced]`. Invalidated together with the whole index.
    plans: [OnceLock<SearchPlan>; 2],
}

impl CsrIndex {
    /// Freezes `graph` into CSR form. Called through [`LabeledGraph::csr`].
    pub(crate) fn build(graph: &LabeledGraph) -> Self {
        let n = graph.vertex_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * graph.edge_count());
        offsets.push(0);
        for v in graph.vertices() {
            neighbors.extend_from_slice(graph.neighbors(v));
            offsets.push(neighbors.len() as u32);
        }

        // Histograms: each adjacency row is sorted by vertex id, not label, so
        // sort a scratch row of labels per vertex and run-length encode it.
        let mut hist_offsets = Vec::with_capacity(n + 1);
        let mut hist_entries = Vec::new();
        hist_offsets.push(0);
        let mut scratch: Vec<Label> = Vec::new();
        for v in graph.vertices() {
            scratch.clear();
            scratch.extend(graph.neighbors(v).iter().map(|&u| graph.label(u)));
            scratch.sort_unstable();
            let mut i = 0;
            while i < scratch.len() {
                let label = scratch[i];
                let mut j = i + 1;
                while j < scratch.len() && scratch[j] == label {
                    j += 1;
                }
                hist_entries.push((label, (j - i) as u32));
                i = j;
            }
            hist_offsets.push(hist_entries.len() as u32);
        }

        let max_label = graph.labels().iter().map(|l| l.0).max().unwrap_or(0);
        let label_index = if max_label < DENSE_LABEL_BOUND {
            // Counting sort by label; vertex ids stay ascending within a label.
            let classes = max_label as usize + 1;
            let mut counts = vec![0u32; classes + 1];
            for l in graph.labels() {
                counts[l.0 as usize + 1] += 1;
            }
            for i in 0..classes {
                counts[i + 1] += counts[i];
            }
            let label_offsets = counts.clone();
            let mut vertices = vec![VertexId(0); n];
            for v in graph.vertices() {
                let slot = &mut counts[graph.label(v).0 as usize];
                vertices[*slot as usize] = v;
                *slot += 1;
            }
            LabelIndex::Dense {
                offsets: label_offsets,
                vertices,
            }
        } else {
            let mut by_label: FxHashMap<Label, Vec<VertexId>> = FxHashMap::default();
            for v in graph.vertices() {
                by_label.entry(graph.label(v)).or_default().push(v);
            }
            let mut labels: Vec<Label> = by_label.keys().copied().collect();
            labels.sort_unstable();
            LabelIndex::Sparse { by_label, labels }
        };

        Self {
            offsets,
            neighbors,
            label_index,
            hist_offsets,
            hist_entries,
            plans: [OnceLock::new(), OnceLock::new()],
        }
    }

    /// The cached VF2 search plan for using this graph as a pattern
    /// (`graph` must be the graph this index was built from).
    pub(crate) fn search_plan(&self, graph: &LabeledGraph, induced: bool) -> &SearchPlan {
        self.plans[induced as usize].get_or_init(|| SearchPlan::build(graph, induced))
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Sorted neighbors of `v` as one contiguous slice.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Whether the edge `(u, v)` exists; binary search over the smaller of the
    /// two adjacency rows.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if self.degree(u) <= self.degree(v) {
            self.neighbors(u).binary_search(&v).is_ok()
        } else {
            self.neighbors(v).binary_search(&u).is_ok()
        }
    }

    /// All vertices with label `l`, ascending by id. Empty slice for labels
    /// absent from the graph.
    #[inline]
    pub fn vertices_with_label(&self, l: Label) -> &[VertexId] {
        match &self.label_index {
            LabelIndex::Dense { offsets, vertices } => {
                let i = l.0 as usize;
                if i + 1 >= offsets.len() {
                    return &[];
                }
                &vertices[offsets[i] as usize..offsets[i + 1] as usize]
            }
            LabelIndex::Sparse { by_label, .. } => {
                by_label.get(&l).map(Vec::as_slice).unwrap_or(&[])
            }
        }
    }

    /// Iterates the distinct labels of the graph in ascending order, each with
    /// its (non-empty) sorted vertex slice.
    pub fn labels_with_vertices(&self) -> impl Iterator<Item = (Label, &[VertexId])> + '_ {
        let dense: Box<dyn Iterator<Item = (Label, &[VertexId])>> = match &self.label_index {
            LabelIndex::Dense { offsets, vertices } => {
                Box::new((0..offsets.len().saturating_sub(1)).filter_map(move |i| {
                    let slice = &vertices[offsets[i] as usize..offsets[i + 1] as usize];
                    (!slice.is_empty()).then_some((Label(i as u32), slice))
                }))
            }
            LabelIndex::Sparse { by_label, labels } => {
                Box::new(labels.iter().map(move |&l| (l, by_label[&l].as_slice())))
            }
        };
        dense
    }

    /// The neighbor-label histogram of `v`: `(label, count)` pairs sorted by
    /// label, one entry per distinct neighbor label.
    #[inline]
    pub fn neighbor_label_histogram(&self, v: VertexId) -> &[(Label, u32)] {
        let lo = self.hist_offsets[v.index()] as usize;
        let hi = self.hist_offsets[v.index() + 1] as usize;
        &self.hist_entries[lo..hi]
    }

    /// Number of neighbors of `v` with label `l`.
    #[inline]
    pub fn neighbor_label_count(&self, v: VertexId, l: Label) -> u32 {
        let row = self.neighbor_label_histogram(v);
        match row.binary_search_by_key(&l, |&(label, _)| label) {
            Ok(i) => row[i].1,
            Err(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LabeledGraph {
        // v0(L0) - v1(L1), v0 - v2(L1), v2 - v3(L0), isolated v4(L2)
        LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(1), Label(0), Label(2)],
            &[(0, 1), (0, 2), (2, 3)],
        )
    }

    #[test]
    fn csr_matches_adjacency() {
        let g = sample();
        let csr = g.csr();
        assert_eq!(csr.vertex_count(), 5);
        for v in g.vertices() {
            assert_eq!(csr.neighbors(v), g.neighbors(v));
            assert_eq!(csr.degree(v), g.degree(v));
        }
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(csr.has_edge(u, v), g.has_edge(u, v), "edge ({u}, {v})");
            }
        }
    }

    #[test]
    fn label_index_groups_and_sorts() {
        let g = sample();
        let csr = g.csr();
        assert_eq!(
            csr.vertices_with_label(Label(0)),
            &[VertexId(0), VertexId(3)]
        );
        assert_eq!(
            csr.vertices_with_label(Label(1)),
            &[VertexId(1), VertexId(2)]
        );
        assert_eq!(csr.vertices_with_label(Label(2)), &[VertexId(4)]);
        assert!(csr.vertices_with_label(Label(9)).is_empty());
        let labels: Vec<u32> = csr.labels_with_vertices().map(|(l, _)| l.0).collect();
        assert_eq!(labels, vec![0, 1, 2]);
    }

    #[test]
    fn histograms_count_neighbor_labels() {
        let g = sample();
        let csr = g.csr();
        assert_eq!(csr.neighbor_label_histogram(VertexId(0)), &[(Label(1), 2)]);
        assert_eq!(csr.neighbor_label_histogram(VertexId(2)), &[(Label(0), 2)],);
        assert!(csr.neighbor_label_histogram(VertexId(4)).is_empty());
        assert_eq!(csr.neighbor_label_count(VertexId(0), Label(1)), 2);
        assert_eq!(csr.neighbor_label_count(VertexId(0), Label(0)), 0);
    }

    #[test]
    fn cache_invalidation_on_mutation() {
        let mut g = sample();
        assert_eq!(g.csr().vertices_with_label(Label(2)).len(), 1);
        let v = g.add_vertex(Label(2));
        g.add_edge(VertexId(0), v);
        let csr = g.csr();
        assert_eq!(csr.vertices_with_label(Label(2)).len(), 2);
        assert_eq!(csr.neighbor_label_count(VertexId(0), Label(2)), 1);
    }

    #[test]
    fn empty_graph_has_empty_index() {
        let g = LabeledGraph::new();
        let csr = g.csr();
        assert_eq!(csr.vertex_count(), 0);
        assert!(csr.vertices_with_label(Label(0)).is_empty());
        assert_eq!(csr.labels_with_vertices().count(), 0);
    }

    #[test]
    fn sparse_label_ids_use_hash_index() {
        let g = LabeledGraph::from_parts(
            &[Label(u32::MAX - 1), Label(5), Label(u32::MAX - 1)],
            &[(0, 1), (1, 2)],
        );
        let csr = g.csr();
        assert_eq!(
            csr.vertices_with_label(Label(u32::MAX - 1)),
            &[VertexId(0), VertexId(2)]
        );
        assert_eq!(csr.vertices_with_label(Label(5)), &[VertexId(1)]);
        let labels: Vec<u32> = csr.labels_with_vertices().map(|(l, _)| l.0).collect();
        assert_eq!(labels, vec![5, u32::MAX - 1]);
        assert_eq!(
            csr.neighbor_label_count(VertexId(1), Label(u32::MAX - 1)),
            2
        );
    }
}
