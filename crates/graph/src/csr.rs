//! Frozen CSR (compressed sparse row) view of a [`LabeledGraph`].
//!
//! The mutable [`LabeledGraph`] builder stores one `Vec<VertexId>` per vertex,
//! which is convenient for incremental construction but poor for the matcher's
//! access pattern: candidate generation walks many adjacency lists and label
//! classes per search node, so pointer-chasing and per-vertex allocations
//! dominate. [`CsrIndex`] freezes the graph into three flat structures:
//!
//! * **Adjacency CSR** — `offsets` / `neighbors`: all adjacency lists in one
//!   contiguous array, each row sorted by vertex id.
//! * **Label index** — all vertices grouped by label
//!   ([`CsrIndex::vertices_with_label`]), the unanchored-candidate source for
//!   the VF2 matcher (replacing a full host scan).
//! * **Neighbor-label histograms** — per vertex, the sorted `(label, count)`
//!   multiset of its neighbors' labels ([`CsrIndex::neighbor_label_histogram`]),
//!   the workhorse of Stage-I spider mining and of the matcher's capacity
//!   pruning.
//!
//! The core arrays are held as [`ArcSlice`]s, so an index built from a
//! memory-mapped snapshot (format v2, see `io`) points straight into the
//! mapped file — freezing a loaded graph copies nothing. The label index and
//! the histograms are derived structures and are built lazily on first use:
//! a snapshot-backed graph that only ever runs a histogram-free algorithm
//! never faults the label-index section in at all.
//!
//! The index is built lazily by [`LabeledGraph::csr`] and cached; any mutation
//! of the graph invalidates the cache. See `DESIGN.md` § "CSR graph core" and
//! § "Snapshot format v2".

use crate::graph::{LabeledGraph, VertexId};
use crate::iso::SearchPlan;
use crate::label::Label;
use crate::shared::{ArcSlice, SharedBytes};
use crate::signature::StableHasher;
use rustc_hash::FxHashMap;
use std::sync::OnceLock;

/// Label ids below this bound get a dense (array-indexed) label index; rarer,
/// sparser id spaces fall back to a hash map. All the paper's workloads use
/// small dense label spaces, so the dense path is the common one.
const DENSE_LABEL_BOUND: u32 = 1 << 20;

/// Vertices grouped by label: dense offsets over label ids, a sparse map, or
/// a zero-copy view into a snapshot's packed label-index section. All three
/// yield sorted vertex-id slices.
#[derive(Debug)]
pub(crate) enum LabelIndex {
    Dense {
        /// `offsets[l] .. offsets[l + 1]` indexes `vertices` for label `l`.
        offsets: Vec<u32>,
        vertices: Vec<VertexId>,
    },
    Sparse {
        by_label: FxHashMap<Label, Vec<VertexId>>,
        /// Distinct labels in ascending order (for deterministic iteration).
        labels: Vec<Label>,
    },
    /// Decoded straight out of a snapshot's label-index section: distinct
    /// labels ascending, group starts, and vertices grouped by label. The
    /// slices borrow the snapshot storage (mapping or read buffer).
    Packed {
        labels: ArcSlice<Label>,
        /// `starts[i] .. starts[i + 1]` indexes `vertices` for `labels[i]`;
        /// length `labels.len() + 1`.
        starts: ArcSlice<u32>,
        vertices: ArcSlice<VertexId>,
    },
}

/// The raw label-index section of a format-v2 snapshot, deferred for lazy
/// decoding.
///
/// Holding this instead of a decoded index is what makes snapshot loading
/// lazy in the one place it can be: the section's pages are only read (and,
/// for a mapping, only faulted in) when a label-index-using algorithm first
/// asks for them. The crate-private `decode` checksums and structurally
/// validates the section at that point; if the section is corrupt the caller
/// falls back to rebuilding the index from the (already validated) labels
/// section, because the section is redundant by construction.
pub struct PackedLabelIndex {
    /// The section bytes: `d`, `labels[d]`, `starts[d + 1]`, `vertices[n]`,
    /// all little-endian `u32`.
    section: SharedBytes,
    /// Section checksum from the snapshot's section table.
    checksum: u64,
    /// `|V|` from the snapshot header; fixes the expected `vertices` length.
    vertex_count: u32,
}

impl PackedLabelIndex {
    /// Wraps an undecoded label-index section (see the `io` module for the
    /// on-disk layout).
    pub(crate) fn new(section: SharedBytes, checksum: u64, vertex_count: u32) -> Self {
        Self {
            section,
            checksum,
            vertex_count,
        }
    }

    /// Checksums, parses, and structurally validates the section against the
    /// graph's vertex labels. Returns the decoded index, or a description of
    /// the first violation found.
    pub(crate) fn decode(&self, vertex_labels: &[Label]) -> Result<LabelIndex, String> {
        let mut hasher = StableHasher::new();
        hasher.write_bytes(self.section.as_slice());
        let computed = hasher.finish();
        if computed != self.checksum {
            return Err(format!(
                "label-index section checksum mismatch: table says {:#018x}, section hashes to {computed:#018x}",
                self.checksum
            ));
        }
        let n = self.vertex_count as usize;
        let word = |i: usize| -> Option<u32> {
            let bytes = self.section.as_slice().get(i * 4..i * 4 + 4)?;
            Some(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
        };
        let d = word(0).ok_or("label-index section shorter than its count word")? as usize;
        let want_words = 1 + d + (d + 1) + n;
        if self.section.len() != want_words * 4 {
            return Err(format!(
                "label-index section length {} != expected {} bytes for {d} classes over {n} vertices",
                self.section.len(),
                want_words * 4
            ));
        }
        let labels: ArcSlice<Label> = self.section.typed(4, d).expect("length checked");
        let starts: ArcSlice<u32> = self
            .section
            .typed(4 * (1 + d), d + 1)
            .expect("length checked");
        let vertices: ArcSlice<VertexId> = self
            .section
            .typed(4 * (1 + d + d + 1), n)
            .expect("length checked");

        if !labels.windows(2).all(|w| w[0] < w[1]) {
            return Err("label-index classes not strictly ascending".into());
        }
        if starts.first().copied() != Some(0) || starts.last().copied() != Some(n as u32) {
            return Err("label-index group starts do not span the vertex array".into());
        }
        if !starts.windows(2).all(|w| w[0] <= w[1]) {
            return Err("label-index group starts not monotone".into());
        }
        if vertex_labels.len() != n {
            return Err(format!(
                "label-index built for {n} vertices but graph has {}",
                vertex_labels.len()
            ));
        }
        for g in 0..d {
            let group = &vertices[starts[g] as usize..starts[g + 1] as usize];
            if group.is_empty() {
                return Err(format!("label-index class {:?} is empty", labels[g]));
            }
            if !group.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!(
                    "label-index class {:?} vertices not strictly ascending",
                    labels[g]
                ));
            }
            for &v in group {
                match vertex_labels.get(v.index()) {
                    Some(&l) if l == labels[g] => {}
                    Some(&l) => {
                        return Err(format!(
                            "label-index places {v:?} under {:?} but its label is {l:?}",
                            labels[g]
                        ));
                    }
                    None => return Err(format!("label-index references {v:?} out of bounds")),
                }
            }
        }
        Ok(LabelIndex::Packed {
            labels,
            starts,
            vertices,
        })
    }
}

/// Lazily built neighbor-label histograms: one sorted `(label, count)` row
/// per vertex, CSR-packed.
struct Histograms {
    /// Row offsets into `entries`; length `|V| + 1`.
    offsets: Vec<u32>,
    /// Concatenated per-vertex rows, each sorted by label.
    entries: Vec<(Label, u32)>,
}

/// The frozen, flat, read-optimized form of a [`LabeledGraph`].
pub struct CsrIndex {
    /// Vertex labels, indexed by vertex id (shared with the graph/snapshot).
    labels: ArcSlice<Label>,
    /// Row offsets into `neighbors`; length `|V| + 1`.
    offsets: ArcSlice<u32>,
    /// Concatenated sorted adjacency lists.
    neighbors: ArcSlice<VertexId>,
    /// Undecoded label-index section from a v2 snapshot, if this index was
    /// loaded from one; decoded (checksummed + validated) on first use.
    packed: Option<PackedLabelIndex>,
    /// Vertices grouped by label; built (or decoded from `packed`) on first
    /// use.
    label_index: OnceLock<LabelIndex>,
    /// Per-vertex neighbor-label histograms; built on first use.
    hists: OnceLock<Histograms>,
    /// Cached VF2 search plans when this graph is used as a *pattern*:
    /// `[non-induced, induced]`. Invalidated together with the whole index.
    plans: [OnceLock<SearchPlan>; 2],
}

impl CsrIndex {
    /// Freezes `graph` into CSR form. Called through [`LabeledGraph::csr`].
    ///
    /// A graph already in frozen (snapshot-backed) storage contributes its
    /// existing flat arrays by reference — no copying, no re-freeze.
    pub(crate) fn build(graph: &LabeledGraph) -> Self {
        let labels = graph.shared_labels();
        let (offsets, neighbors) = match graph.frozen_parts() {
            Some(parts) => parts,
            None => {
                let n = graph.vertex_count();
                let mut offsets = Vec::with_capacity(n + 1);
                let mut neighbors = Vec::with_capacity(2 * graph.edge_count());
                offsets.push(0);
                for v in graph.vertices() {
                    neighbors.extend_from_slice(graph.neighbors(v));
                    offsets.push(neighbors.len() as u32);
                }
                (ArcSlice::from_vec(offsets), ArcSlice::from_vec(neighbors))
            }
        };
        Self::from_arrays(labels, offsets, neighbors, None)
    }

    /// Assembles an index directly from flat arrays (the snapshot-load path).
    /// `packed` carries the snapshot's undecoded label-index section, if any.
    pub(crate) fn from_arrays(
        labels: ArcSlice<Label>,
        offsets: ArcSlice<u32>,
        neighbors: ArcSlice<VertexId>,
        packed: Option<PackedLabelIndex>,
    ) -> Self {
        debug_assert_eq!(offsets.len(), labels.len() + 1);
        Self {
            labels,
            offsets,
            neighbors,
            packed,
            label_index: OnceLock::new(),
            hists: OnceLock::new(),
            plans: [OnceLock::new(), OnceLock::new()],
        }
    }

    /// The label index, decoding the snapshot's packed section on first use.
    ///
    /// A corrupt packed section is *not* fatal here: it is redundant with the
    /// labels section (which was validated at load time), so the index is
    /// rebuilt from the labels instead. Eager loads surface the same
    /// corruption as a typed error by calling [`PackedLabelIndex::decode`]
    /// directly — see `io::graph_from_snapshot_v2`.
    fn label_index(&self) -> &LabelIndex {
        self.label_index.get_or_init(|| {
            if let Some(packed) = &self.packed {
                if let Ok(decoded) = packed.decode(&self.labels) {
                    return decoded;
                }
            }
            Self::build_label_index(&self.labels)
        })
    }

    /// Groups vertices by label (counting sort for dense id spaces, hash map
    /// for sparse ones).
    fn build_label_index(labels: &[Label]) -> LabelIndex {
        let n = labels.len();
        let max_label = labels.iter().map(|l| l.0).max().unwrap_or(0);
        if max_label < DENSE_LABEL_BOUND {
            // Counting sort by label; vertex ids stay ascending within a label.
            let classes = max_label as usize + 1;
            let mut counts = vec![0u32; classes + 1];
            for l in labels {
                counts[l.0 as usize + 1] += 1;
            }
            for i in 0..classes {
                counts[i + 1] += counts[i];
            }
            let label_offsets = counts.clone();
            let mut vertices = vec![VertexId(0); n];
            for i in 0..n {
                let slot = &mut counts[labels[i].0 as usize];
                vertices[*slot as usize] = VertexId(i as u32);
                *slot += 1;
            }
            LabelIndex::Dense {
                offsets: label_offsets,
                vertices,
            }
        } else {
            let mut by_label: FxHashMap<Label, Vec<VertexId>> = FxHashMap::default();
            for i in 0..n {
                by_label
                    .entry(labels[i])
                    .or_default()
                    .push(VertexId(i as u32));
            }
            let mut sorted: Vec<Label> = by_label.keys().copied().collect();
            sorted.sort_unstable();
            LabelIndex::Sparse {
                by_label,
                labels: sorted,
            }
        }
    }

    /// The histograms, built on first use.
    fn hists(&self) -> &Histograms {
        self.hists.get_or_init(|| {
            let n = self.vertex_count();
            // Each adjacency row is sorted by vertex id, not label, so sort a
            // scratch row of labels per vertex and run-length encode it.
            let mut offsets = Vec::with_capacity(n + 1);
            let mut entries = Vec::new();
            offsets.push(0);
            let mut scratch: Vec<Label> = Vec::new();
            for v in 0..n {
                scratch.clear();
                scratch.extend(
                    self.neighbors(VertexId(v as u32))
                        .iter()
                        .map(|&u| self.labels[u.index()]),
                );
                scratch.sort_unstable();
                let mut i = 0;
                while i < scratch.len() {
                    let label = scratch[i];
                    let mut j = i + 1;
                    while j < scratch.len() && scratch[j] == label {
                        j += 1;
                    }
                    entries.push((label, (j - i) as u32));
                    i = j;
                }
                offsets.push(entries.len() as u32);
            }
            Histograms { offsets, entries }
        })
    }

    /// Forces the lazy structures (label index, histograms) to materialize.
    /// Benches use this to separate open latency from first-use latency.
    pub fn prewarm(&self) {
        let _ = self.label_index();
        let _ = self.hists();
    }

    /// The cached VF2 search plan for using this graph as a pattern
    /// (`graph` must be the graph this index was built from).
    pub(crate) fn search_plan(&self, graph: &LabeledGraph, induced: bool) -> &SearchPlan {
        self.plans[induced as usize].get_or_init(|| SearchPlan::build(graph, induced))
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Sorted neighbors of `v` as one contiguous slice.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Whether the edge `(u, v)` exists; binary search over the smaller of the
    /// two adjacency rows.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if self.degree(u) <= self.degree(v) {
            self.neighbors(u).binary_search(&v).is_ok()
        } else {
            self.neighbors(v).binary_search(&u).is_ok()
        }
    }

    /// All vertices with label `l`, ascending by id. Empty slice for labels
    /// absent from the graph.
    #[inline]
    pub fn vertices_with_label(&self, l: Label) -> &[VertexId] {
        match self.label_index() {
            LabelIndex::Dense { offsets, vertices } => {
                let i = l.0 as usize;
                if i + 1 >= offsets.len() {
                    return &[];
                }
                &vertices[offsets[i] as usize..offsets[i + 1] as usize]
            }
            LabelIndex::Sparse { by_label, .. } => {
                by_label.get(&l).map(Vec::as_slice).unwrap_or(&[])
            }
            LabelIndex::Packed {
                labels,
                starts,
                vertices,
            } => match labels.binary_search(&l) {
                Ok(i) => &vertices[starts[i] as usize..starts[i + 1] as usize],
                Err(_) => &[],
            },
        }
    }

    /// Iterates the distinct labels of the graph in ascending order, each with
    /// its (non-empty) sorted vertex slice.
    pub fn labels_with_vertices(&self) -> impl Iterator<Item = (Label, &[VertexId])> + '_ {
        let iter: Box<dyn Iterator<Item = (Label, &[VertexId])>> = match self.label_index() {
            LabelIndex::Dense { offsets, vertices } => {
                Box::new((0..offsets.len().saturating_sub(1)).filter_map(move |i| {
                    let slice = &vertices[offsets[i] as usize..offsets[i + 1] as usize];
                    (!slice.is_empty()).then_some((Label(i as u32), slice))
                }))
            }
            LabelIndex::Sparse { by_label, labels } => {
                Box::new(labels.iter().map(move |&l| (l, by_label[&l].as_slice())))
            }
            LabelIndex::Packed {
                labels,
                starts,
                vertices,
            } => Box::new((0..labels.len()).map(move |i| {
                (
                    labels[i],
                    &vertices[starts[i] as usize..starts[i + 1] as usize],
                )
            })),
        };
        iter
    }

    /// The neighbor-label histogram of `v`: `(label, count)` pairs sorted by
    /// label, one entry per distinct neighbor label.
    #[inline]
    pub fn neighbor_label_histogram(&self, v: VertexId) -> &[(Label, u32)] {
        let hists = self.hists();
        let lo = hists.offsets[v.index()] as usize;
        let hi = hists.offsets[v.index() + 1] as usize;
        &hists.entries[lo..hi]
    }

    /// Number of neighbors of `v` with label `l`.
    #[inline]
    pub fn neighbor_label_count(&self, v: VertexId, l: Label) -> u32 {
        let row = self.neighbor_label_histogram(v);
        match row.binary_search_by_key(&l, |&(label, _)| label) {
            Ok(i) => row[i].1,
            Err(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LabeledGraph {
        // v0(L0) - v1(L1), v0 - v2(L1), v2 - v3(L0), isolated v4(L2)
        LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(1), Label(0), Label(2)],
            &[(0, 1), (0, 2), (2, 3)],
        )
    }

    #[test]
    fn csr_matches_adjacency() {
        let g = sample();
        let csr = g.csr();
        assert_eq!(csr.vertex_count(), 5);
        for v in g.vertices() {
            assert_eq!(csr.neighbors(v), g.neighbors(v));
            assert_eq!(csr.degree(v), g.degree(v));
        }
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(csr.has_edge(u, v), g.has_edge(u, v), "edge ({u}, {v})");
            }
        }
    }

    #[test]
    fn label_index_groups_and_sorts() {
        let g = sample();
        let csr = g.csr();
        assert_eq!(
            csr.vertices_with_label(Label(0)),
            &[VertexId(0), VertexId(3)]
        );
        assert_eq!(
            csr.vertices_with_label(Label(1)),
            &[VertexId(1), VertexId(2)]
        );
        assert_eq!(csr.vertices_with_label(Label(2)), &[VertexId(4)]);
        assert!(csr.vertices_with_label(Label(9)).is_empty());
        let labels: Vec<u32> = csr.labels_with_vertices().map(|(l, _)| l.0).collect();
        assert_eq!(labels, vec![0, 1, 2]);
    }

    #[test]
    fn histograms_count_neighbor_labels() {
        let g = sample();
        let csr = g.csr();
        assert_eq!(csr.neighbor_label_histogram(VertexId(0)), &[(Label(1), 2)]);
        assert_eq!(csr.neighbor_label_histogram(VertexId(2)), &[(Label(0), 2)],);
        assert!(csr.neighbor_label_histogram(VertexId(4)).is_empty());
        assert_eq!(csr.neighbor_label_count(VertexId(0), Label(1)), 2);
        assert_eq!(csr.neighbor_label_count(VertexId(0), Label(0)), 0);
    }

    #[test]
    fn cache_invalidation_on_mutation() {
        let mut g = sample();
        assert_eq!(g.csr().vertices_with_label(Label(2)).len(), 1);
        let v = g.add_vertex(Label(2));
        g.add_edge(VertexId(0), v);
        let csr = g.csr();
        assert_eq!(csr.vertices_with_label(Label(2)).len(), 2);
        assert_eq!(csr.neighbor_label_count(VertexId(0), Label(2)), 1);
    }

    #[test]
    fn empty_graph_has_empty_index() {
        let g = LabeledGraph::new();
        let csr = g.csr();
        assert_eq!(csr.vertex_count(), 0);
        assert!(csr.vertices_with_label(Label(0)).is_empty());
        assert_eq!(csr.labels_with_vertices().count(), 0);
    }

    #[test]
    fn sparse_label_ids_use_hash_index() {
        let g = LabeledGraph::from_parts(
            &[Label(u32::MAX - 1), Label(5), Label(u32::MAX - 1)],
            &[(0, 1), (1, 2)],
        );
        let csr = g.csr();
        assert_eq!(
            csr.vertices_with_label(Label(u32::MAX - 1)),
            &[VertexId(0), VertexId(2)]
        );
        assert_eq!(csr.vertices_with_label(Label(5)), &[VertexId(1)]);
        let labels: Vec<u32> = csr.labels_with_vertices().map(|(l, _)| l.0).collect();
        assert_eq!(labels, vec![5, u32::MAX - 1]);
        assert_eq!(
            csr.neighbor_label_count(VertexId(1), Label(u32::MAX - 1)),
            2
        );
    }

    /// Builds the packed section bytes the way `io` lays them out, so the
    /// decode path can be exercised without a full snapshot file.
    fn packed_section(labels: &[u32], starts: &[u32], vertices: &[u32]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(labels.len() as u32).to_le_bytes());
        for w in labels.iter().chain(starts).chain(vertices) {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        bytes
    }

    fn section_checksum(bytes: &[u8]) -> u64 {
        let mut h = StableHasher::new();
        h.write_bytes(bytes);
        h.finish()
    }

    #[test]
    fn packed_label_index_decodes_and_serves_queries() {
        // Labels per vertex: v0=L0, v1=L1, v2=L1, v3=L0, v4=L2.
        let vertex_labels = [Label(0), Label(1), Label(1), Label(0), Label(2)];
        let bytes = packed_section(&[0, 1, 2], &[0, 2, 4, 5], &[0, 3, 1, 2, 4]);
        let checksum = section_checksum(&bytes);
        let packed = PackedLabelIndex::new(SharedBytes::new(bytes), checksum, 5);
        let decoded = packed.decode(&vertex_labels).expect("well-formed section");
        match decoded {
            LabelIndex::Packed {
                labels, vertices, ..
            } => {
                assert_eq!(&*labels, &[Label(0), Label(1), Label(2)]);
                assert_eq!(vertices.len(), 5);
            }
            _ => panic!("expected packed variant"),
        }
    }

    #[test]
    fn packed_label_index_rejects_corruption() {
        let vertex_labels = [Label(0), Label(1)];
        let good = packed_section(&[0, 1], &[0, 1, 2], &[0, 1]);
        let checksum = section_checksum(&good);

        // Bit flip → checksum mismatch.
        let mut flipped = good.clone();
        flipped[6] ^= 0x40;
        let err = PackedLabelIndex::new(SharedBytes::new(flipped), checksum, 2)
            .decode(&vertex_labels)
            .expect_err("flip must be caught");
        assert!(err.contains("checksum"), "{err}");

        // Structural lie with a recomputed (valid) checksum: vertex under the
        // wrong class.
        let lying = packed_section(&[0, 1], &[0, 1, 2], &[1, 0]);
        let lying_sum = section_checksum(&lying);
        let err = PackedLabelIndex::new(SharedBytes::new(lying), lying_sum, 2)
            .decode(&vertex_labels)
            .expect_err("mislabeled vertex must be caught");
        assert!(err.contains("label"), "{err}");

        // Wrong length.
        let short = packed_section(&[0, 1], &[0, 1, 2], &[0]);
        let short_sum = section_checksum(&short);
        let err = PackedLabelIndex::new(SharedBytes::new(short), short_sum, 2)
            .decode(&vertex_labels)
            .expect_err("short section must be caught");
        assert!(err.contains("length"), "{err}");
    }
}
