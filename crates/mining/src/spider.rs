//! Stage I of SpiderMine for r = 1: mining all frequent 1-spiders.
//!
//! A 1-spider (Definition 4 with r = 1) is a frequent pattern in which every
//! vertex is adjacent to a designated *head*. Following the paper's own
//! implementation choice ("we focus on the case for r = 1 for simplicity of
//! presentation and implementation", Appendix B) we represent a 1-spider as a
//! labeled star: a head label plus a sorted multiset of leaf labels. Edges
//! between two leaves of the same pattern are recovered later by the closure
//! refinement step in the `spidermine` crate (see DESIGN.md).
//!
//! Support of a spider is its number of *head occurrences*: the count of data
//! vertices `v` whose label matches the head label and whose neighborhood can
//! injectively supply the leaf-label multiset. This is anti-monotone in the
//! leaf multiset, which makes the level-wise enumeration below complete.
//!
//! The enumeration runs on the graph's frozen CSR view: head classes come from
//! the label index, and per-head capacity checks are merge-joins over the
//! precomputed neighbor-label histograms (sorted `(label, count)` rows) rather
//! than hash-map probes.
//!
//! **Storage is an arena.** Catalog construction used to be allocation-bound:
//! every mined spider owned a `Vec` of leaf labels and a `Vec` of heads, so a
//! scale-free graph minted millions of small allocations. The catalog now
//! keeps one flat leaf-label pool and one flat head pool; a spider is a span
//! pair into those pools, read through the borrowed [`SpiderRef`] view, and a
//! child spider is written by `memcpy`ing its parent's leaf span plus one
//! label (copy-on-grow, the same discipline as
//! `spidermine_graph::PatternStore`). Frontier expansion emits every
//! qualifying `(leaf-label, head)` pair in one fused merge pass and groups
//! the pairs with a counting sort over the dense label universe, using
//! per-chunk reusable scratch — no per-child allocation at all. Frontier
//! blocks expand in parallel (rayon) and splice back in frontier order,
//! keeping the catalog byte-identical to a sequential run; with a single
//! rayon worker, an in-place fast path skips the chunk buffers and scatters
//! surviving heads straight into the head pool.

use rayon::prelude::*;
use rustc_hash::FxHashMap;
use spidermine_graph::graph::{LabeledGraph, VertexId};
use spidermine_graph::label::Label;

/// Index of a spider inside a [`SpiderCatalog`].
pub type SpiderId = usize;

/// Configuration of the spider mining stage.
#[derive(Clone, Debug)]
pub struct SpiderMiningConfig {
    /// Minimum number of head occurrences for a spider to be kept.
    pub support_threshold: usize,
    /// Maximum number of leaves per spider. Bounds the level-wise enumeration
    /// on high-degree (scale-free) graphs; the paper's Figure 17 shows the
    /// spider count exploding with graph size for exactly this reason.
    pub max_leaves: usize,
    /// Also emit the zero-leaf (single-vertex) spiders.
    pub include_single_vertex: bool,
    /// Hard cap on the number of spiders mined (a safety valve for scale-free
    /// inputs; `usize::MAX` disables it).
    pub max_spiders: usize,
}

impl Default for SpiderMiningConfig {
    fn default() -> Self {
        Self {
            support_threshold: 2,
            max_leaves: 8,
            include_single_vertex: false,
            max_spiders: usize::MAX,
        }
    }
}

/// Materializes a star pattern: vertex 0 is the head; vertices `1..` are the
/// leaves in sorted label order.
fn star_pattern(head_label: Label, leaf_labels: &[Label]) -> LabeledGraph {
    let mut g = LabeledGraph::with_capacity(1 + leaf_labels.len());
    let head = g.add_vertex(head_label);
    for &leaf in leaf_labels {
        let l = g.add_vertex(leaf);
        g.add_edge(head, l);
    }
    g
}

/// True if `v` (in `graph`) can host the star as its head: label matches and
/// the neighborhood supplies the leaf multiset.
fn star_matches_at(
    graph: &LabeledGraph,
    v: VertexId,
    head_label: Label,
    leaf_labels: &[Label],
) -> bool {
    graph.label(v) == head_label
        && leaf_multiset_fits(leaf_labels, graph.neighbor_label_histogram(v))
}

/// An owned 1-spider: a star pattern with its head occurrences in the data
/// graph. The catalog itself stores spiders in flat pools and hands out
/// borrowed [`SpiderRef`]s; this owned form exists for callers that need to
/// hold a spider beyond the catalog's lifetime (and for tests).
#[derive(Clone, Debug)]
pub struct Spider {
    /// Identifier within the catalog.
    pub id: SpiderId,
    /// Label of the head vertex.
    pub head_label: Label,
    /// Sorted multiset of leaf labels.
    pub leaf_labels: Vec<Label>,
    /// Data vertices that can serve as the head of this spider.
    pub heads: Vec<VertexId>,
}

impl Spider {
    /// Number of head occurrences (the spider's support).
    pub fn support(&self) -> usize {
        self.heads.len()
    }

    /// Number of vertices of the spider pattern (head + leaves).
    pub fn vertex_count(&self) -> usize {
        1 + self.leaf_labels.len()
    }

    /// Number of edges of the spider pattern (= number of leaves).
    pub fn size(&self) -> usize {
        self.leaf_labels.len()
    }

    /// Materializes the spider as a standalone pattern graph.
    /// Vertex 0 is the head; vertices `1..` are the leaves in sorted label order.
    pub fn to_pattern(&self) -> LabeledGraph {
        star_pattern(self.head_label, &self.leaf_labels)
    }

    /// Checks whether `v` (in `graph`) can host this spider as its head:
    /// label matches and the neighborhood supplies the leaf multiset.
    pub fn matches_at(&self, graph: &LabeledGraph, v: VertexId) -> bool {
        star_matches_at(graph, v, self.head_label, &self.leaf_labels)
    }
}

/// Borrowed view of one spider stored in a [`SpiderCatalog`]: spans into the
/// catalog's flat leaf and head pools.
#[derive(Clone, Copy, Debug)]
pub struct SpiderRef<'a> {
    /// Identifier within the catalog.
    pub id: SpiderId,
    /// Label of the head vertex.
    pub head_label: Label,
    /// Sorted multiset of leaf labels.
    pub leaf_labels: &'a [Label],
    /// Data vertices that can serve as the head of this spider.
    pub heads: &'a [VertexId],
}

impl SpiderRef<'_> {
    /// Number of head occurrences (the spider's support).
    pub fn support(&self) -> usize {
        self.heads.len()
    }

    /// Number of vertices of the spider pattern (head + leaves).
    pub fn vertex_count(&self) -> usize {
        1 + self.leaf_labels.len()
    }

    /// Number of edges of the spider pattern (= number of leaves).
    pub fn size(&self) -> usize {
        self.leaf_labels.len()
    }

    /// Materializes the spider as a standalone pattern graph.
    /// Vertex 0 is the head; vertices `1..` are the leaves in sorted label order.
    pub fn to_pattern(&self) -> LabeledGraph {
        star_pattern(self.head_label, self.leaf_labels)
    }

    /// Checks whether `v` (in `graph`) can host this spider as its head.
    pub fn matches_at(&self, graph: &LabeledGraph, v: VertexId) -> bool {
        star_matches_at(graph, v, self.head_label, self.leaf_labels)
    }

    /// Copies the spider out of the catalog pools into an owned [`Spider`].
    pub fn to_owned(&self) -> Spider {
        Spider {
            id: self.id,
            head_label: self.head_label,
            leaf_labels: self.leaf_labels.to_vec(),
            heads: self.heads.to_vec(),
        }
    }
}

/// True if the sorted leaf-label multiset fits inside a neighbor-label
/// histogram row (every label's multiplicity is covered). Both inputs are
/// sorted by label, so this is a single merge scan.
fn leaf_multiset_fits(sorted_leaves: &[Label], histogram: &[(Label, u32)]) -> bool {
    let mut hist_at = 0;
    let mut i = 0;
    while i < sorted_leaves.len() {
        let label = sorted_leaves[i];
        let mut j = i + 1;
        while j < sorted_leaves.len() && sorted_leaves[j] == label {
            j += 1;
        }
        let need = (j - i) as u32;
        while hist_at < histogram.len() && histogram[hist_at].0 < label {
            hist_at += 1;
        }
        if hist_at == histogram.len()
            || histogram[hist_at].0 != label
            || histogram[hist_at].1 < need
        {
            return false;
        }
        i = j;
    }
    true
}

/// Pool spans of one stored spider.
#[derive(Clone, Copy, Debug)]
struct SpiderSpan {
    head_label: Label,
    lstart: u32,
    llen: u32,
    hstart: u32,
    hlen: u32,
}

/// The complete set of frequent 1-spiders of a graph, stored in flat pools
/// (see the module docs).
///
/// The head-label index is built lazily on first use: catalog construction
/// pushes millions of spiders on scale-free graphs, and one hash-map update
/// per push used to be a measurable slice of the construction time.
#[derive(Debug, Default)]
pub struct SpiderCatalog {
    leaf_pool: Vec<Label>,
    head_pool: Vec<VertexId>,
    spans: Vec<SpiderSpan>,
    by_head_label: std::sync::OnceLock<FxHashMap<Label, Vec<SpiderId>>>,
}

impl SpiderCatalog {
    /// Mines all frequent 1-spiders of `graph` under `config`.
    ///
    /// The level-wise frontier is a list of *spider ids*: each level's entries
    /// are read straight out of the catalog pools, expanded in parallel
    /// blocks, and their children spliced back in frontier order — so the
    /// catalog is byte-identical to a sequential run while per-spider data is
    /// written into the pools exactly once. When only one rayon worker is
    /// available, a sequential fast path scatters surviving heads straight
    /// into the catalog's head pool, skipping the per-chunk double buffering
    /// the parallel splice needs.
    pub fn mine(graph: &LabeledGraph, config: &SpiderMiningConfig) -> Self {
        Self::mine_with_mode(graph, config, rayon::current_num_threads() <= 1)
    }

    /// [`SpiderCatalog::mine`] with the execution path pinned: `sequential`
    /// forces the single-worker in-place fast path, `!sequential` the
    /// parallel chunked path. Public (but hidden) so the randomized
    /// equivalence tests can exercise *both* paths regardless of the
    /// machine's core count; prefer [`SpiderCatalog::mine`], which picks
    /// automatically.
    #[doc(hidden)]
    pub fn mine_with_mode(
        graph: &LabeledGraph,
        config: &SpiderMiningConfig,
        sequential: bool,
    ) -> Self {
        let sigma = config.support_threshold.max(1);
        let csr = graph.csr();
        let mut catalog = SpiderCatalog::default();
        // Dense label universe bound for the counting-sort scratch (labels
        // are interned, so `max + 1` is tight).
        let universe = graph
            .labels()
            .iter()
            .map(|l| l.0 as usize + 1)
            .max()
            .unwrap_or(0);

        // Parallel fan-out width per splice. Blocks (rather than whole levels)
        // bound peak memory: levels grow into the millions on scale-free
        // graphs. Within a block, the entries fold in parallel under the
        // pool's adaptive splitting — each task expands a contiguous run of
        // entries with one reused scratch and one flat output buffer (so
        // per-entry allocation amortizes away), and runs stuck behind an
        // expensive entry are stolen instead of straggling as they did with
        // fixed-size chunks.
        const PAR_BLOCK: usize = 1024;
        // Minimum frontier entries per fold leaf: each leaf allocates one
        // universe-sized ExpandScratch, so stealing must not split below the
        // run length that amortizes it.
        const SCRATCH_MIN_LEAF: usize = 16;

        if config.max_leaves == 0 || graph.vertex_count() == 0 {
            if config.include_single_vertex {
                for (label, heads) in csr.labels_with_vertices() {
                    if heads.len() >= sigma {
                        catalog.push(label, &[], heads);
                    }
                }
            }
            return catalog;
        }

        // Level 1, from the label index's frequent head classes (ascending by
        // label): single-leaf spiders.
        let classes: Vec<(Label, &[VertexId])> = csr
            .labels_with_vertices()
            .filter(|(_, heads)| heads.len() >= sigma)
            .collect();
        let mut frontier: Vec<SpiderId> = Vec::new();
        for (label, heads) in &classes {
            if config.include_single_vertex {
                catalog.push(*label, &[], heads);
            }
        }

        if sequential {
            return Self::mine_sequential(csr, config, sigma, universe, &classes, catalog);
        }

        'seed: for block in classes.chunks(PAR_BLOCK) {
            let (expanded, _) = block.par_iter().fold_reduce_min(
                SCRATCH_MIN_LEAF,
                || {
                    (
                        ChunkExpansion::default(),
                        ExpandScratch::with_universe(universe),
                    )
                },
                |(mut out, mut scratch), &(_, heads)| {
                    expand_entry(csr, &[], heads, sigma, &mut scratch, &mut out);
                    (out, scratch)
                },
                |(mut left, scratch), (right, _)| {
                    left.merge(right);
                    (left, scratch)
                },
            );
            let (mut cand_at, mut head_at) = (0usize, 0usize);
            for (entry, &(label, _)) in block.iter().enumerate() {
                for _ in 0..expanded.entry_child_counts[entry] {
                    if catalog.len() >= config.max_spiders {
                        break 'seed;
                    }
                    let cand = expanded.candidates[cand_at];
                    let hlen = expanded.head_counts[cand_at] as usize;
                    let heads = &expanded.heads[head_at..head_at + hlen];
                    cand_at += 1;
                    head_at += hlen;
                    frontier.push(catalog.push_child(label, None, cand, heads));
                }
            }
        }

        // Levels 2..: expand the previous level's spiders.
        let mut leaves = 1;
        while !frontier.is_empty() && leaves < config.max_leaves {
            leaves += 1;
            if catalog.len() >= config.max_spiders {
                break;
            }
            let mut next: Vec<SpiderId> = Vec::new();
            'level: for block in frontier.chunks(PAR_BLOCK) {
                let (expanded, _) = block.par_iter().fold_reduce_min(
                    SCRATCH_MIN_LEAF,
                    || {
                        (
                            ChunkExpansion::default(),
                            ExpandScratch::with_universe(universe),
                        )
                    },
                    |(mut out, mut scratch), &id| {
                        let spider = catalog.get(id);
                        expand_entry(
                            csr,
                            spider.leaf_labels,
                            spider.heads,
                            sigma,
                            &mut scratch,
                            &mut out,
                        );
                        (out, scratch)
                    },
                    |(mut left, scratch), (right, _)| {
                        left.merge(right);
                        (left, scratch)
                    },
                );
                let (mut cand_at, mut head_at) = (0usize, 0usize);
                for (entry, &parent) in block.iter().enumerate() {
                    let head_label = catalog.spans[parent].head_label;
                    for _ in 0..expanded.entry_child_counts[entry] {
                        if catalog.len() >= config.max_spiders {
                            break 'level;
                        }
                        let cand = expanded.candidates[cand_at];
                        let hlen = expanded.head_counts[cand_at] as usize;
                        let heads = &expanded.heads[head_at..head_at + hlen];
                        cand_at += 1;
                        head_at += hlen;
                        next.push(catalog.push_child(head_label, Some(parent), cand, heads));
                    }
                }
            }
            frontier = next;
        }
        catalog
    }

    /// The single-worker fast path of [`SpiderCatalog::mine`]: identical
    /// enumeration, but each entry's surviving heads are scattered directly
    /// to the catalog's head-pool tail and the child spans pushed in place —
    /// no chunk buffer, no second head copy.
    fn mine_sequential(
        csr: &spidermine_graph::CsrIndex,
        config: &SpiderMiningConfig,
        sigma: usize,
        universe: usize,
        classes: &[(Label, &[VertexId])],
        mut catalog: SpiderCatalog,
    ) -> SpiderCatalog {
        let mut scratch = ExpandScratch::with_universe(universe);
        let mut frontier: Vec<SpiderId> = Vec::new();
        for &(label, heads) in classes {
            if !catalog.expand_in_place(
                csr,
                label,
                None,
                heads,
                sigma,
                config.max_spiders,
                &mut scratch,
                &mut frontier,
            ) {
                break;
            }
        }
        let mut leaves = 1;
        while !frontier.is_empty() && leaves < config.max_leaves {
            leaves += 1;
            if catalog.len() >= config.max_spiders {
                break;
            }
            let mut next: Vec<SpiderId> = Vec::new();
            for &parent in &frontier {
                let head_label = catalog.spans[parent].head_label;
                if !catalog.expand_in_place(
                    csr,
                    head_label,
                    Some(parent),
                    &[],
                    sigma,
                    config.max_spiders,
                    &mut scratch,
                    &mut next,
                ) {
                    break;
                }
            }
            frontier = next;
        }
        catalog
    }

    /// Expands one frontier entry (see [`expand_entry`] for the algorithm),
    /// writing the surviving head groups straight to the head pool and
    /// pushing the child spans. Returns `false` once `max_spiders` is hit.
    ///
    /// The entry's heads are `class_heads` for a level-1 label class, or the
    /// parent spider's own pool span otherwise — read in place (the scatter
    /// region starts past every existing span, so `split_at_mut` keeps the
    /// borrows apart without copying the parent out first).
    #[allow(clippy::too_many_arguments)]
    fn expand_in_place(
        &mut self,
        csr: &spidermine_graph::CsrIndex,
        head_label: Label,
        parent: Option<SpiderId>,
        class_heads: &[VertexId],
        sigma: usize,
        max_spiders: usize,
        scratch: &mut ExpandScratch,
        out_ids: &mut Vec<SpiderId>,
    ) -> bool {
        let (head_range, max_leaf, max_leaf_run) = match parent {
            Some(p) => {
                let s = self.spans[p];
                let leaves = &self.leaf_pool[s.lstart as usize..(s.lstart + s.llen) as usize];
                let max_leaf = leaves.last().copied();
                let run = max_leaf
                    .map(|ml| leaves.iter().rev().take_while(|&&l| l == ml).count() as u32)
                    .unwrap_or(0);
                (
                    s.hstart as usize..(s.hstart + s.hlen) as usize,
                    max_leaf,
                    run,
                )
            }
            None => (0..0, None, 0),
        };
        // Start of the qualifying tail of a head's histogram row. A row entry
        // always has count ≥ 1, so every label *strictly* greater than the
        // maximum leaf qualifies unconditionally; only the boundary label
        // (== max leaf) must cover the trailing run plus one. Returns the
        // index of the first unconditionally qualifying entry, plus whether
        // the boundary label itself qualifies.
        let tail_of = |row: &[(Label, u32)]| -> (usize, bool) {
            match max_leaf {
                Some(ml) => {
                    let s = row.partition_point(|&(l, _)| l < ml);
                    if s < row.len() && row[s].0 == ml {
                        (s + 1, row[s].1 > max_leaf_run)
                    } else {
                        (s, false)
                    }
                }
                None => (0, false),
            }
        };

        // Pass A — count qualifying heads per label. The rows live
        // contiguously in the CSR, so the second scan below stays in cache;
        // skipping a pair buffer halves the scratch traffic of the parallel
        // path.
        scratch.touched.clear();
        let count_at = |l: u32, counts: &mut [u32], touched: &mut Vec<u32>| {
            if counts[l as usize] == 0 {
                touched.push(l);
            }
            counts[l as usize] += 1;
        };
        let mut total = 0usize;
        scratch.row_starts.clear();
        {
            let heads: &[VertexId] = if parent.is_some() {
                &self.head_pool[head_range.clone()]
            } else {
                class_heads
            };
            for &h in heads {
                let row = csr.neighbor_label_histogram(h);
                let (start, boundary) = tail_of(row);
                scratch
                    .row_starts
                    .push(start as u32 | if boundary { 1 << 31 } else { 0 });
                if boundary {
                    count_at(
                        max_leaf.expect("boundary implies max leaf").0,
                        &mut scratch.counts,
                        &mut scratch.touched,
                    );
                    total += 1;
                }
                for &(label, _) in &row[start..] {
                    count_at(label.0, &mut scratch.counts, &mut scratch.touched);
                }
                total += row.len() - start;
            }
        }
        if total < sigma {
            for &l in &scratch.touched {
                scratch.counts[l as usize] = 0;
            }
            return true;
        }
        scratch.touched.sort_unstable();

        scratch.cursors.clear();
        scratch.cand_labels.clear();
        scratch.cand_counts.clear();
        let base = self.head_pool.len() as u32;
        let mut cursor = base;
        let mut children = 0u32;
        for &l in &scratch.touched {
            let count = scratch.counts[l as usize];
            if count as usize >= sigma {
                scratch.slots[l as usize] = children;
                scratch.cand_labels.push(l);
                scratch.cand_counts.push(count);
                scratch.cursors.push(cursor);
                cursor += count;
                children += 1;
            } else {
                scratch.slots[l as usize] = u32::MAX;
            }
        }

        // Pass B — scatter the surviving heads straight into the head pool,
        // grouped per accepted label, ascending head order per group. Every
        // existing span (the parent's included) lies below `base`, so the
        // pool splits into a stable read half and the scatter tail.
        if children > 0 {
            self.head_pool.resize(cursor as usize, VertexId(0));
            let (stable, tail) = self.head_pool.split_at_mut(base as usize);
            let heads: &[VertexId] = if parent.is_some() {
                &stable[head_range]
            } else {
                class_heads
            };
            let mut scatter = |l: u32, h: VertexId, cursors: &mut [u32]| {
                let slot = scratch.slots[l as usize];
                if slot != u32::MAX {
                    let at = &mut cursors[slot as usize];
                    tail[(*at - base) as usize] = h;
                    *at += 1;
                }
            };
            for (&h, &memo) in heads.iter().zip(&scratch.row_starts) {
                let row = csr.neighbor_label_histogram(h);
                let start = (memo & !(1 << 31)) as usize;
                if memo & (1 << 31) != 0 {
                    scatter(
                        max_leaf.expect("boundary implies max leaf").0,
                        h,
                        &mut scratch.cursors,
                    );
                }
                for &(label, _) in &row[start..] {
                    scatter(label.0, h, &mut scratch.cursors);
                }
            }
        }
        for &l in &scratch.touched {
            scratch.counts[l as usize] = 0;
        }

        if children > 0 {
            // One invalidation covers every push below.
            self.by_head_label.take();
        }
        let parent_leaf_range = parent.map(|p| {
            let s = self.spans[p];
            s.lstart as usize..(s.lstart + s.llen) as usize
        });
        let mut hstart = base;
        for (&l, &count) in scratch.cand_labels.iter().zip(&scratch.cand_counts) {
            if self.len() >= max_spiders {
                return false;
            }
            let lstart = self.leaf_pool.len() as u32;
            if let Some(range) = parent_leaf_range.clone() {
                self.leaf_pool.extend_from_within(range);
            }
            self.leaf_pool.push(Label(l));
            let id = self.spans.len();
            self.spans.push(SpiderSpan {
                head_label,
                lstart,
                llen: self.leaf_pool.len() as u32 - lstart,
                hstart,
                hlen: count,
            });
            out_ids.push(id);
            hstart += count;
        }
        true
    }

    /// Appends a spider by copying the given slices into the pools.
    fn push(&mut self, head_label: Label, leaf_labels: &[Label], heads: &[VertexId]) -> SpiderId {
        let lstart = self.leaf_pool.len() as u32;
        self.leaf_pool.extend_from_slice(leaf_labels);
        let hstart = self.head_pool.len() as u32;
        self.head_pool.extend_from_slice(heads);
        self.finish_push(head_label, lstart, hstart)
    }

    /// Copy-on-grow append: the child's leaf multiset is its parent's leaf
    /// span (copied within the pool) plus `cand`, which keeps the multiset
    /// sorted because candidate labels never decrease along a branch.
    fn push_child(
        &mut self,
        head_label: Label,
        parent: Option<SpiderId>,
        cand: Label,
        heads: &[VertexId],
    ) -> SpiderId {
        let lstart = self.leaf_pool.len() as u32;
        if let Some(p) = parent {
            let s = self.spans[p];
            self.leaf_pool
                .extend_from_within(s.lstart as usize..(s.lstart + s.llen) as usize);
        }
        self.leaf_pool.push(cand);
        let hstart = self.head_pool.len() as u32;
        self.head_pool.extend_from_slice(heads);
        self.finish_push(head_label, lstart, hstart)
    }

    fn finish_push(&mut self, head_label: Label, lstart: u32, hstart: u32) -> SpiderId {
        let id = self.spans.len();
        // A push invalidates the lazily built head-label index.
        self.by_head_label.take();
        self.spans.push(SpiderSpan {
            head_label,
            lstart,
            llen: self.leaf_pool.len() as u32 - lstart,
            hstart,
            hlen: self.head_pool.len() as u32 - hstart,
        });
        id
    }

    fn head_label_index(&self) -> &FxHashMap<Label, Vec<SpiderId>> {
        self.by_head_label.get_or_init(|| {
            let mut index: FxHashMap<Label, Vec<SpiderId>> = FxHashMap::default();
            for (id, span) in self.spans.iter().enumerate() {
                index.entry(span.head_label).or_default().push(id);
            }
            index
        })
    }

    /// All spiders, in mining order.
    pub fn spiders(&self) -> impl Iterator<Item = SpiderRef<'_>> + '_ {
        (0..self.spans.len()).map(move |id| self.get(id))
    }

    /// Number of spiders mined.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if no spiders were mined.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The spider with the given id.
    pub fn get(&self, id: SpiderId) -> SpiderRef<'_> {
        let s = self.spans[id];
        SpiderRef {
            id,
            head_label: s.head_label,
            leaf_labels: &self.leaf_pool[s.lstart as usize..(s.lstart + s.llen) as usize],
            heads: &self.head_pool[s.hstart as usize..(s.hstart + s.hlen) as usize],
        }
    }

    /// Ids of spiders whose head label is `label`.
    pub fn with_head_label(&self, label: Label) -> &[SpiderId] {
        self.head_label_index()
            .get(&label)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Ids of spiders that can be planted with their head at `v`
    /// (the paper's `Spider(v)`).
    pub fn matching_at(&self, graph: &LabeledGraph, v: VertexId) -> Vec<SpiderId> {
        let histogram = graph.neighbor_label_histogram(v);
        self.with_head_label(graph.label(v))
            .iter()
            .copied()
            .filter(|&id| leaf_multiset_fits(self.get(id).leaf_labels, histogram))
            .collect()
    }

    /// The largest spider (most leaves); ties broken by lowest id.
    pub fn largest(&self) -> Option<SpiderRef<'_>> {
        self.spiders().max_by_key(|s| (s.size(), usize::MAX - s.id))
    }
}

/// Reusable scratch of one expansion task: qualifying `(label, head)` pairs
/// of the current entry, plus counting-sort arrays sized by the dense label
/// universe. One scratch serves a fold task's whole run of frontier entries
/// (at least `SCRATCH_MIN_LEAF` of them, enforced by `fold_reduce_min`), so
/// the steady state of catalog construction allocates nothing per entry.
struct ExpandScratch {
    /// Qualifying labels of the current entry, head-major.
    pair_labels: Vec<u32>,
    /// The head each qualifying label came from (parallel to `pair_labels`).
    pair_heads: Vec<VertexId>,
    /// Qualifying-head count per label (reset via `touched` after each entry).
    counts: Vec<u32>,
    /// Child slot per accepted label, `u32::MAX` for infrequent ones.
    slots: Vec<u32>,
    /// Labels seen in the current entry.
    touched: Vec<u32>,
    /// Scatter cursor per accepted child.
    cursors: Vec<u32>,
    /// Accepted candidate labels (sequential in-place path).
    cand_labels: Vec<u32>,
    /// Surviving-head count per accepted candidate (sequential path).
    cand_counts: Vec<u32>,
    /// Memoized row-tail start per head from pass A (boundary-qualifies flag
    /// in the high bit), so pass B skips the binary searches.
    row_starts: Vec<u32>,
}

impl ExpandScratch {
    fn with_universe(universe: usize) -> Self {
        Self {
            pair_labels: Vec::new(),
            pair_heads: Vec::new(),
            counts: vec![0; universe],
            slots: vec![0; universe],
            touched: Vec::new(),
            cursors: Vec::new(),
            cand_labels: Vec::new(),
            cand_counts: Vec::new(),
            row_starts: Vec::new(),
        }
    }
}

/// Flattened children of a contiguous run of expanded frontier entries. The
/// splice loop in [`SpiderCatalog::mine`] walks `entry_child_counts` with
/// running cursors into `candidates`/`head_counts`/`heads`.
#[derive(Default)]
struct ChunkExpansion {
    /// Children per entry, in entry order.
    entry_child_counts: Vec<u32>,
    /// Candidate leaf labels, flat across entries (ascending per entry).
    candidates: Vec<Label>,
    /// Surviving-head count per candidate.
    head_counts: Vec<u32>,
    /// Surviving heads, flat, grouped per candidate (ascending per group).
    heads: Vec<VertexId>,
}

impl ChunkExpansion {
    /// Appends `right` after this run's entries — the order-preserving
    /// reduce step of the parallel fold over a frontier block (left range
    /// precedes right, so the merged run reads exactly like a sequential
    /// expansion of the whole block).
    fn merge(&mut self, right: ChunkExpansion) {
        self.entry_child_counts.extend(right.entry_child_counts);
        self.candidates.extend(right.candidates);
        self.head_counts.extend(right.head_counts);
        self.heads.extend(right.heads);
    }
}

/// Expands one frontier entry into `out`: every frequent one-leaf extension
/// whose label keeps the leaf multiset sorted (labels only grow), with its
/// surviving heads.
///
/// Because leaf labels are sorted, a candidate label `l` is already present in
/// the multiset only when `l` equals the current maximum leaf label — its
/// required multiplicity is that label's trailing run length; every larger
/// label requires one. The expansion is a single fused pass: each head's
/// sorted CSR histogram row is merge-scanned once, emitting a flat
/// `(label, head)` pair per spare-capacity match; the pairs are then grouped
/// by label with a counting sort over the dense label universe (pairs arrive
/// head-major, so each group's heads stay in ascending head order — matching
/// what a per-candidate merge-join would emit). Groups below the support
/// threshold are dropped.
fn expand_entry(
    csr: &spidermine_graph::CsrIndex,
    leaf_labels: &[Label],
    heads: &[VertexId],
    sigma: usize,
    scratch: &mut ExpandScratch,
    out: &mut ChunkExpansion,
) {
    let max_leaf = leaf_labels.last().copied();
    let max_leaf_run = max_leaf
        .map(|ml| leaf_labels.iter().rev().take_while(|&&l| l == ml).count() as u32)
        .unwrap_or(0);

    // Fused pass: every qualifying (label, head) pair, stored as one label
    // run per head, with the per-label counts accumulated on the fly.
    // A histogram row entry always has count ≥ 1, so every label *strictly*
    // greater than the current maximum leaf qualifies unconditionally; only
    // the boundary label (== max leaf) must cover the trailing run plus one.
    // The row tail therefore bulk-appends with no per-entry capacity check.
    scratch.pair_labels.clear();
    scratch.pair_heads.clear();
    for &h in heads {
        let row = csr.neighbor_label_histogram(h);
        let run_start = scratch.pair_labels.len();
        let start = match max_leaf {
            Some(ml) => {
                let s = row.partition_point(|&(l, _)| l < ml);
                if s < row.len() && row[s].0 == ml {
                    if row[s].1 > max_leaf_run {
                        scratch.pair_labels.push(ml.0);
                    }
                    s + 1
                } else {
                    s
                }
            }
            None => 0,
        };
        scratch
            .pair_labels
            .extend(row[start..].iter().map(|&(label, _)| label.0));
        // One bulk fill covers this head's whole run (boundary label
        // included, because `run_start` predates the boundary push).
        debug_assert!(scratch.pair_heads.len() <= run_start);
        scratch.pair_heads.resize(scratch.pair_labels.len(), h);
    }
    if scratch.pair_labels.len() < sigma {
        out.entry_child_counts.push(0);
        return;
    }

    // Count qualifying heads per label.
    scratch.touched.clear();
    for &l in &scratch.pair_labels {
        let l = l as usize;
        if scratch.counts[l] == 0 {
            scratch.touched.push(l as u32);
        }
        scratch.counts[l] += 1;
    }
    scratch.touched.sort_unstable();

    // Accept frequent labels as children (ascending), laying out their head
    // groups back-to-back at the tail of `out.heads`.
    scratch.cursors.clear();
    let mut children = 0u32;
    let mut cursor = out.heads.len() as u32;
    for &l in &scratch.touched {
        let count = scratch.counts[l as usize];
        if count as usize >= sigma {
            scratch.slots[l as usize] = children;
            out.candidates.push(Label(l));
            out.head_counts.push(count);
            scratch.cursors.push(cursor);
            cursor += count;
            children += 1;
        } else {
            scratch.slots[l as usize] = u32::MAX;
        }
    }
    if children > 0 {
        out.heads.resize(cursor as usize, VertexId(0));
        for (&l, &h) in scratch.pair_labels.iter().zip(&scratch.pair_heads) {
            let slot = scratch.slots[l as usize];
            if slot != u32::MAX {
                let at = &mut scratch.cursors[slot as usize];
                out.heads[*at as usize] = h;
                *at += 1;
            }
        }
    }
    for &l in &scratch.touched {
        scratch.counts[l as usize] = 0;
    }
    out.entry_child_counts.push(children);
}

/// Histogram of the labels of `v`'s neighbors as a hash map.
///
/// Retained for API compatibility; new code should prefer the allocation-free
/// [`LabeledGraph::neighbor_label_histogram`] slice.
pub fn neighbor_label_counts(graph: &LabeledGraph, v: VertexId) -> FxHashMap<Label, usize> {
    graph
        .neighbor_label_histogram(v)
        .iter()
        .map(|&(label, count)| (label, count as usize))
        .collect()
}

pub mod reference {
    //! The original hash-map-based Stage-I enumeration, retained as the
    //! baseline the spider-mining benchmarks measure speedup against and as a
    //! second implementation for the catalog-equivalence property tests.
    //!
    //! Its cost is dominated by one `FxHashMap` histogram per vertex, hash
    //! probes inside the per-level candidate scan, and one leaf/head `Vec`
    //! pair per frontier entry — replaced in
    //! [`SpiderCatalog::mine`](super::SpiderCatalog::mine) by CSR histogram
    //! rows and the flat catalog pools.

    use super::{SpiderCatalog, SpiderMiningConfig, SpiderRef};
    use rustc_hash::FxHashMap;
    use spidermine_graph::graph::{LabeledGraph, VertexId};
    use spidermine_graph::label::Label;

    /// Mines the catalog with the original algorithm. The resulting spiders
    /// (order, labels, heads) are identical to [`SpiderCatalog::mine`] except
    /// for the `include_single_vertex` emission order, which the original
    /// left to hash-map iteration order.
    pub fn mine(graph: &LabeledGraph, config: &SpiderMiningConfig) -> SpiderCatalog {
        let sigma = config.support_threshold.max(1);
        let neighbor_counts: Vec<FxHashMap<Label, usize>> = graph
            .vertices()
            .map(|v| {
                let mut counts = FxHashMap::default();
                for &u in graph.neighbors(v) {
                    *counts.entry(graph.label(u)).or_insert(0) += 1;
                }
                counts
            })
            .collect();
        let mut heads_by_label: FxHashMap<Label, Vec<VertexId>> = FxHashMap::default();
        for v in graph.vertices() {
            heads_by_label.entry(graph.label(v)).or_default().push(v);
        }

        let mut catalog = SpiderCatalog::default();
        let mut frontier: Vec<(Label, Vec<Label>, Vec<VertexId>)> = Vec::new();
        for (&label, heads) in &heads_by_label {
            if heads.len() >= sigma {
                if config.include_single_vertex {
                    catalog.push(label, &[], heads);
                }
                frontier.push((label, Vec::new(), heads.clone()));
            }
        }
        frontier.sort_by_key(|(l, _, _)| *l);

        let mut leaves = 0;
        while !frontier.is_empty() && leaves < config.max_leaves {
            leaves += 1;
            let mut next: Vec<(Label, Vec<Label>, Vec<VertexId>)> = Vec::new();
            for (head_label, leaf_labels, heads) in &frontier {
                if catalog.len() >= config.max_spiders {
                    break;
                }
                let min_label = leaf_labels.last().copied().unwrap_or(Label(0));
                let mut candidates: Vec<Label> = Vec::new();
                {
                    let mut seen: FxHashMap<Label, ()> = FxHashMap::default();
                    for &h in heads {
                        for (&label, &count) in &neighbor_counts[h.index()] {
                            if label < min_label {
                                continue;
                            }
                            let required = leaf_labels.iter().filter(|&&l| l == label).count();
                            if count > required {
                                seen.entry(label).or_insert(());
                            }
                        }
                    }
                    candidates.extend(seen.keys().copied());
                    candidates.sort_unstable();
                }
                for cand in candidates {
                    if catalog.len() >= config.max_spiders {
                        break;
                    }
                    let required = leaf_labels.iter().filter(|&&l| l == cand).count() + 1;
                    let surviving: Vec<VertexId> = heads
                        .iter()
                        .copied()
                        .filter(|h| {
                            neighbor_counts[h.index()].get(&cand).copied().unwrap_or(0) >= required
                        })
                        .collect();
                    if surviving.len() < sigma {
                        continue;
                    }
                    let mut new_leaves = leaf_labels.clone();
                    new_leaves.push(cand);
                    catalog.push(*head_label, &new_leaves, &surviving);
                    next.push((*head_label, new_leaves, surviving));
                }
            }
            frontier = next;
        }
        catalog
    }

    /// The original `SpiderCatalog::matching_at`: rebuilds the neighbor-label
    /// histogram of `v` as a hash map and one requirement map per candidate
    /// spider — two allocations per check that the CSR version does without.
    pub fn matching_at(
        catalog: &SpiderCatalog,
        graph: &LabeledGraph,
        v: VertexId,
    ) -> Vec<super::SpiderId> {
        let counts = super::neighbor_label_counts(graph, v);
        catalog
            .with_head_label(graph.label(v))
            .iter()
            .copied()
            .filter(|&id| {
                let mut requirements: FxHashMap<Label, usize> = FxHashMap::default();
                for &l in catalog.get(id).leaf_labels {
                    *requirements.entry(l).or_insert(0) += 1;
                }
                requirements
                    .iter()
                    .all(|(label, &need)| counts.get(label).copied().unwrap_or(0) >= need)
            })
            .collect()
    }

    /// Asserts two catalogs describe the same spider set in the same order.
    pub fn catalogs_equal(a: &SpiderCatalog, b: &SpiderCatalog) -> bool {
        a.len() == b.len()
            && a.spiders()
                .zip(b.spiders())
                .all(|(x, y): (SpiderRef<'_>, SpiderRef<'_>)| {
                    x.head_label == y.head_label
                        && x.leaf_labels == y.leaf_labels
                        && x.heads == y.heads
                })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Graph: two identical stars (head label 0 with leaves 1, 1, 2) plus one
    /// head label 0 with a single leaf label 1.
    fn two_star_graph() -> LabeledGraph {
        LabeledGraph::from_parts(
            &[
                Label(0),
                Label(1),
                Label(1),
                Label(2), // star A: v0 head
                Label(0),
                Label(1),
                Label(1),
                Label(2), // star B: v4 head
                Label(0),
                Label(1), // small star: v8 head
            ],
            &[(0, 1), (0, 2), (0, 3), (4, 5), (4, 6), (4, 7), (8, 9)],
        )
    }

    fn default_config(sigma: usize) -> SpiderMiningConfig {
        SpiderMiningConfig {
            support_threshold: sigma,
            ..SpiderMiningConfig::default()
        }
    }

    #[test]
    fn mines_the_full_star_with_support_two() {
        let g = two_star_graph();
        let catalog = SpiderCatalog::mine(&g, &default_config(2));
        // The full star head=0, leaves={1,1,2} must be found with exactly heads {v0, v4}.
        let full = catalog
            .spiders()
            .find(|s| s.leaf_labels == [Label(1), Label(1), Label(2)])
            .expect("full star mined");
        assert_eq!(full.head_label, Label(0));
        assert_eq!(full.support(), 2);
        assert!(full.heads.contains(&VertexId(0)));
        assert!(full.heads.contains(&VertexId(4)));
    }

    #[test]
    fn sub_stars_are_also_mined_with_larger_support() {
        let g = two_star_graph();
        let catalog = SpiderCatalog::mine(&g, &default_config(2));
        let single_leaf = catalog
            .spiders()
            .find(|s| s.head_label == Label(0) && s.leaf_labels == [Label(1)])
            .expect("single-leaf spider mined");
        assert_eq!(single_leaf.support(), 3);
    }

    #[test]
    fn support_threshold_prunes_rare_spiders() {
        let g = two_star_graph();
        let catalog = SpiderCatalog::mine(&g, &default_config(3));
        // Only spiders supported by all three label-0 heads survive: the
        // {1}-leaf star (and nothing with label-2 leaves or two leaves).
        assert!(catalog.spiders().all(|s| s.support() >= 3));
        assert!(catalog.spiders().any(|s| s.leaf_labels == [Label(1)]));
        assert!(!catalog.spiders().any(|s| s.leaf_labels.contains(&Label(2))));
    }

    #[test]
    fn leaf_multisets_are_sorted_and_unique() {
        let g = two_star_graph();
        let catalog = SpiderCatalog::mine(&g, &default_config(2));
        let mut seen = std::collections::HashSet::new();
        for s in catalog.spiders() {
            let mut sorted = s.leaf_labels.to_vec();
            sorted.sort();
            assert_eq!(sorted, s.leaf_labels, "leaf labels must be sorted");
            assert!(
                seen.insert((s.head_label, s.leaf_labels.to_vec())),
                "duplicate spider {:?}",
                s
            );
        }
    }

    #[test]
    fn max_leaves_bounds_spider_size() {
        let g = two_star_graph();
        let config = SpiderMiningConfig {
            support_threshold: 2,
            max_leaves: 1,
            ..SpiderMiningConfig::default()
        };
        let catalog = SpiderCatalog::mine(&g, &config);
        assert!(catalog.spiders().all(|s| s.size() <= 1));
    }

    #[test]
    fn max_spiders_caps_catalog_size() {
        let g = two_star_graph();
        let config = SpiderMiningConfig {
            support_threshold: 2,
            max_spiders: 3,
            ..SpiderMiningConfig::default()
        };
        let catalog = SpiderCatalog::mine(&g, &config);
        assert!(catalog.len() <= 3);
        // The first spiders of the uncapped run are kept.
        let full = SpiderCatalog::mine(&g, &default_config(2));
        for (a, b) in catalog.spiders().zip(full.spiders()) {
            assert_eq!(a.head_label, b.head_label);
            assert_eq!(a.leaf_labels, b.leaf_labels);
            assert_eq!(a.heads, b.heads);
        }
    }

    #[test]
    fn to_pattern_reconstructs_the_star() {
        let spider = Spider {
            id: 0,
            head_label: Label(7),
            leaf_labels: vec![Label(1), Label(2)],
            heads: vec![],
        };
        let p = spider.to_pattern();
        assert_eq!(p.vertex_count(), 3);
        assert_eq!(p.edge_count(), 2);
        assert_eq!(p.label(VertexId(0)), Label(7));
        assert_eq!(p.degree(VertexId(0)), 2);
    }

    #[test]
    fn matching_at_respects_capacity() {
        let g = two_star_graph();
        let catalog = SpiderCatalog::mine(&g, &default_config(2));
        let at_small_head = catalog.matching_at(&g, VertexId(8));
        // Only spiders needing at most one label-1 leaf match at v8.
        for id in &at_small_head {
            let s = catalog.get(*id);
            assert!(s.leaf_labels.len() <= 1);
        }
        let at_big_head = catalog.matching_at(&g, VertexId(0));
        assert!(at_big_head.len() >= at_small_head.len());
        // Leaf vertices (label 1) host no label-0-headed spiders.
        assert!(catalog
            .matching_at(&g, VertexId(1))
            .iter()
            .all(|&id| catalog.get(id).head_label == Label(1)));
    }

    #[test]
    fn include_single_vertex_emits_zero_leaf_spiders() {
        let g = two_star_graph();
        let config = SpiderMiningConfig {
            support_threshold: 2,
            include_single_vertex: true,
            ..SpiderMiningConfig::default()
        };
        let catalog = SpiderCatalog::mine(&g, &config);
        assert!(catalog.spiders().any(|s| s.leaf_labels.is_empty()));
        let config = SpiderMiningConfig {
            support_threshold: 2,
            include_single_vertex: false,
            ..SpiderMiningConfig::default()
        };
        let catalog = SpiderCatalog::mine(&g, &config);
        assert!(catalog.spiders().all(|s| !s.leaf_labels.is_empty()));
    }

    #[test]
    fn largest_returns_max_leaf_spider() {
        let g = two_star_graph();
        let catalog = SpiderCatalog::mine(&g, &default_config(2));
        assert_eq!(catalog.largest().expect("non-empty").size(), 3);
    }

    #[test]
    fn empty_graph_yields_empty_catalog() {
        let catalog = SpiderCatalog::mine(&LabeledGraph::new(), &SpiderMiningConfig::default());
        assert!(catalog.is_empty());
        assert_eq!(catalog.len(), 0);
        assert!(catalog.largest().is_none());
    }

    #[test]
    fn matches_at_checks_label_and_capacity() {
        let g = two_star_graph();
        let spider = Spider {
            id: 0,
            head_label: Label(0),
            leaf_labels: vec![Label(1), Label(1)],
            heads: vec![],
        };
        assert!(spider.matches_at(&g, VertexId(0)));
        assert!(
            !spider.matches_at(&g, VertexId(8)),
            "only one label-1 neighbor"
        );
        assert!(!spider.matches_at(&g, VertexId(1)), "wrong head label");
    }

    #[test]
    fn spider_ref_round_trips_to_owned() {
        let g = two_star_graph();
        let catalog = SpiderCatalog::mine(&g, &default_config(2));
        for s in catalog.spiders() {
            let owned = s.to_owned();
            assert_eq!(owned.id, s.id);
            assert_eq!(owned.head_label, s.head_label);
            assert_eq!(owned.leaf_labels, s.leaf_labels);
            assert_eq!(owned.heads, s.heads);
            assert_eq!(owned.size(), s.size());
            assert_eq!(owned.vertex_count(), s.vertex_count());
        }
    }

    #[test]
    fn csr_miner_matches_reference_catalog() {
        let g = two_star_graph();
        for sigma in [1, 2, 3] {
            let config = default_config(sigma);
            let fast = SpiderCatalog::mine(&g, &config);
            let slow = reference::mine(&g, &config);
            assert!(
                reference::catalogs_equal(&fast, &slow),
                "catalogs diverge at sigma {sigma}"
            );
        }
    }

    /// The sequential in-place fast path and the parallel chunked path must
    /// produce identical catalogs (whichever one `mine` picked for this
    /// machine).
    #[test]
    fn sequential_and_parallel_paths_agree() {
        let g = two_star_graph();
        for sigma in [1, 2, 3] {
            for max_spiders in [usize::MAX, 3] {
                let config = SpiderMiningConfig {
                    support_threshold: sigma,
                    max_spiders,
                    ..SpiderMiningConfig::default()
                };
                let seq = SpiderCatalog::mine_with_mode(&g, &config, true);
                let par = SpiderCatalog::mine_with_mode(&g, &config, false);
                assert!(
                    reference::catalogs_equal(&seq, &par),
                    "paths diverge at sigma {sigma}, cap {max_spiders}"
                );
            }
        }
    }

    #[test]
    fn neighbor_label_counts_matches_histogram() {
        let g = two_star_graph();
        let counts = neighbor_label_counts(&g, VertexId(0));
        assert_eq!(counts.get(&Label(1)), Some(&2));
        assert_eq!(counts.get(&Label(2)), Some(&1));
        assert_eq!(counts.get(&Label(0)), None);
    }
}
