//! Stage I of SpiderMine for r = 1: mining all frequent 1-spiders.
//!
//! A 1-spider (Definition 4 with r = 1) is a frequent pattern in which every
//! vertex is adjacent to a designated *head*. Following the paper's own
//! implementation choice ("we focus on the case for r = 1 for simplicity of
//! presentation and implementation", Appendix B) we represent a 1-spider as a
//! labeled star: a head label plus a sorted multiset of leaf labels. Edges
//! between two leaves of the same pattern are recovered later by the closure
//! refinement step in the `spidermine` crate (see DESIGN.md).
//!
//! Support of a spider is its number of *head occurrences*: the count of data
//! vertices `v` whose label matches the head label and whose neighborhood can
//! injectively supply the leaf-label multiset. This is anti-monotone in the
//! leaf multiset, which makes the level-wise enumeration below complete.
//!
//! The enumeration runs on the graph's frozen CSR view: head classes come from
//! the label index, and per-head capacity checks are merge-joins over the
//! precomputed neighbor-label histograms (sorted `(label, count)` rows) rather
//! than hash-map probes. The level-wise frontier holds spider *ids* — entry
//! data is read from the catalog, so each spider's leaf and head lists are
//! allocated exactly once. Frontier blocks expand in parallel (rayon) and
//! splice back in frontier order, keeping the catalog byte-identical to a
//! sequential run.

use rayon::prelude::*;
use rustc_hash::FxHashMap;
use spidermine_graph::graph::{LabeledGraph, VertexId};
use spidermine_graph::label::Label;

/// Index of a spider inside a [`SpiderCatalog`].
pub type SpiderId = usize;

/// Configuration of the spider mining stage.
#[derive(Clone, Debug)]
pub struct SpiderMiningConfig {
    /// Minimum number of head occurrences for a spider to be kept.
    pub support_threshold: usize,
    /// Maximum number of leaves per spider. Bounds the level-wise enumeration
    /// on high-degree (scale-free) graphs; the paper's Figure 17 shows the
    /// spider count exploding with graph size for exactly this reason.
    pub max_leaves: usize,
    /// Also emit the zero-leaf (single-vertex) spiders.
    pub include_single_vertex: bool,
    /// Hard cap on the number of spiders mined (a safety valve for scale-free
    /// inputs; `usize::MAX` disables it).
    pub max_spiders: usize,
}

impl Default for SpiderMiningConfig {
    fn default() -> Self {
        Self {
            support_threshold: 2,
            max_leaves: 8,
            include_single_vertex: false,
            max_spiders: usize::MAX,
        }
    }
}

/// A mined 1-spider: a star pattern with its head occurrences in the data graph.
#[derive(Clone, Debug)]
pub struct Spider {
    /// Identifier within the catalog.
    pub id: SpiderId,
    /// Label of the head vertex.
    pub head_label: Label,
    /// Sorted multiset of leaf labels.
    pub leaf_labels: Vec<Label>,
    /// Data vertices that can serve as the head of this spider.
    pub heads: Vec<VertexId>,
}

impl Spider {
    /// Number of head occurrences (the spider's support).
    pub fn support(&self) -> usize {
        self.heads.len()
    }

    /// Number of vertices of the spider pattern (head + leaves).
    pub fn vertex_count(&self) -> usize {
        1 + self.leaf_labels.len()
    }

    /// Number of edges of the spider pattern (= number of leaves).
    pub fn size(&self) -> usize {
        self.leaf_labels.len()
    }

    /// Materializes the spider as a standalone pattern graph.
    /// Vertex 0 is the head; vertices `1..` are the leaves in sorted label order.
    pub fn to_pattern(&self) -> LabeledGraph {
        let mut g = LabeledGraph::with_capacity(self.vertex_count());
        let head = g.add_vertex(self.head_label);
        for &leaf in &self.leaf_labels {
            let l = g.add_vertex(leaf);
            g.add_edge(head, l);
        }
        g
    }

    /// Checks whether `v` (in `graph`) can host this spider as its head:
    /// label matches and the neighborhood supplies the leaf multiset.
    pub fn matches_at(&self, graph: &LabeledGraph, v: VertexId) -> bool {
        graph.label(v) == self.head_label
            && leaf_multiset_fits(&self.leaf_labels, graph.neighbor_label_histogram(v))
    }
}

/// True if the sorted leaf-label multiset fits inside a neighbor-label
/// histogram row (every label's multiplicity is covered). Both inputs are
/// sorted by label, so this is a single merge scan.
fn leaf_multiset_fits(sorted_leaves: &[Label], histogram: &[(Label, u32)]) -> bool {
    let mut hist_at = 0;
    let mut i = 0;
    while i < sorted_leaves.len() {
        let label = sorted_leaves[i];
        let mut j = i + 1;
        while j < sorted_leaves.len() && sorted_leaves[j] == label {
            j += 1;
        }
        let need = (j - i) as u32;
        while hist_at < histogram.len() && histogram[hist_at].0 < label {
            hist_at += 1;
        }
        if hist_at == histogram.len()
            || histogram[hist_at].0 != label
            || histogram[hist_at].1 < need
        {
            return false;
        }
        i = j;
    }
    true
}

/// A freshly derived spider not yet in the catalog: head label, sorted leaf
/// multiset, and the heads supporting it.
type NewSpider = (Label, Vec<Label>, Vec<VertexId>);

/// The complete set of frequent 1-spiders of a graph.
#[derive(Debug, Default)]
pub struct SpiderCatalog {
    spiders: Vec<Spider>,
    by_head_label: FxHashMap<Label, Vec<SpiderId>>,
}

impl SpiderCatalog {
    /// Mines all frequent 1-spiders of `graph` under `config`.
    ///
    /// The level-wise frontier is a list of *spider ids*: each level's entries
    /// are read straight out of the catalog (no duplicated leaf/head storage),
    /// expanded in parallel blocks, and their children pushed back in frontier
    /// order — so the catalog is byte-identical to a sequential run while
    /// per-spider data is allocated exactly once.
    pub fn mine(graph: &LabeledGraph, config: &SpiderMiningConfig) -> Self {
        let sigma = config.support_threshold.max(1);
        let csr = graph.csr();
        let mut catalog = SpiderCatalog::default();

        // Parallel fan-out width per splice. Blocks (rather than whole levels)
        // bound peak memory: levels grow into the millions on scale-free
        // graphs.
        const PAR_BLOCK: usize = 1024;

        if config.max_leaves == 0 || graph.vertex_count() == 0 {
            if config.include_single_vertex {
                for (label, heads) in csr.labels_with_vertices() {
                    if heads.len() >= sigma {
                        catalog.push(label, Vec::new(), heads.to_vec());
                    }
                }
            }
            return catalog;
        }

        // Level 1, from the label index's frequent head classes (ascending by
        // label): single-leaf spiders.
        let classes: Vec<(Label, &[VertexId])> = csr
            .labels_with_vertices()
            .filter(|(_, heads)| heads.len() >= sigma)
            .collect();
        let mut frontier: Vec<SpiderId> = Vec::new();
        for (label, heads) in &classes {
            if config.include_single_vertex {
                catalog.push(*label, Vec::new(), heads.to_vec());
            }
        }
        'seed: for block in classes.chunks(PAR_BLOCK) {
            let expanded: Vec<Vec<NewSpider>> = block
                .par_iter()
                .map(|&(label, heads)| extend_spider(graph, label, &[], heads, sigma))
                .collect();
            for children in expanded {
                for (head_label, leaf_labels, heads) in children {
                    if catalog.spiders.len() >= config.max_spiders {
                        break 'seed;
                    }
                    frontier.push(catalog.push(head_label, leaf_labels, heads));
                }
            }
        }

        // Levels 2..: expand the previous level's spiders.
        let mut leaves = 1;
        while !frontier.is_empty() && leaves < config.max_leaves {
            leaves += 1;
            if catalog.spiders.len() >= config.max_spiders {
                break;
            }
            let mut next: Vec<SpiderId> = Vec::new();
            'level: for block in frontier.chunks(PAR_BLOCK) {
                let expanded: Vec<Vec<NewSpider>> = block
                    .par_iter()
                    .map(|&id| {
                        let spider = &catalog.spiders[id];
                        extend_spider(
                            graph,
                            spider.head_label,
                            &spider.leaf_labels,
                            &spider.heads,
                            sigma,
                        )
                    })
                    .collect();
                for children in expanded {
                    for (head_label, leaf_labels, heads) in children {
                        if catalog.spiders.len() >= config.max_spiders {
                            break 'level;
                        }
                        next.push(catalog.push(head_label, leaf_labels, heads));
                    }
                }
            }
            frontier = next;
        }
        catalog
    }

    fn push(
        &mut self,
        head_label: Label,
        leaf_labels: Vec<Label>,
        heads: Vec<VertexId>,
    ) -> SpiderId {
        let id = self.spiders.len();
        self.by_head_label.entry(head_label).or_default().push(id);
        self.spiders.push(Spider {
            id,
            head_label,
            leaf_labels,
            heads,
        });
        id
    }

    /// All spiders, in mining order.
    pub fn spiders(&self) -> &[Spider] {
        &self.spiders
    }

    /// Number of spiders mined.
    pub fn len(&self) -> usize {
        self.spiders.len()
    }

    /// True if no spiders were mined.
    pub fn is_empty(&self) -> bool {
        self.spiders.is_empty()
    }

    /// The spider with the given id.
    pub fn get(&self, id: SpiderId) -> &Spider {
        &self.spiders[id]
    }

    /// Ids of spiders whose head label is `label`.
    pub fn with_head_label(&self, label: Label) -> &[SpiderId] {
        self.by_head_label
            .get(&label)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Ids of spiders that can be planted with their head at `v`
    /// (the paper's `Spider(v)`).
    pub fn matching_at(&self, graph: &LabeledGraph, v: VertexId) -> Vec<SpiderId> {
        let histogram = graph.neighbor_label_histogram(v);
        self.with_head_label(graph.label(v))
            .iter()
            .copied()
            .filter(|&id| leaf_multiset_fits(&self.spiders[id].leaf_labels, histogram))
            .collect()
    }

    /// The largest spider (most leaves); ties broken by lowest id.
    pub fn largest(&self) -> Option<&Spider> {
        self.spiders
            .iter()
            .max_by_key(|s| (s.size(), usize::MAX - s.id))
    }
}

/// Expands one frontier entry: every frequent one-leaf extension whose label
/// keeps the leaf multiset sorted (labels only grow), with its surviving heads.
///
/// Because leaf labels are sorted, a candidate label `l` is already present in
/// the multiset only when `l` equals the current maximum leaf label — its
/// required multiplicity is that label's trailing run length; every larger
/// label requires one. Both the candidate collection and the survivor counting
/// are merge-joins over the sorted CSR histogram rows: one sequential pass per
/// head, no hashing and no per-candidate binary searches.
fn extend_spider(
    graph: &LabeledGraph,
    head_label: Label,
    leaf_labels: &[Label],
    heads: &[VertexId],
    sigma: usize,
) -> Vec<NewSpider> {
    let csr = graph.csr();
    let max_leaf = leaf_labels.last().copied();
    let max_leaf_run = max_leaf
        .map(|ml| leaf_labels.iter().rev().take_while(|&&l| l == ml).count() as u32)
        .unwrap_or(0);
    let required = |label: Label| {
        if Some(label) == max_leaf {
            max_leaf_run + 1
        } else {
            1
        }
    };

    // Pass 1 — candidate labels: every label >= max_leaf some head still has
    // spare capacity for, merged from the sorted histogram rows.
    let mut candidates: Vec<Label> = Vec::new();
    for &h in heads {
        let row = csr.neighbor_label_histogram(h);
        let start = match max_leaf {
            Some(ml) => row.partition_point(|&(l, _)| l < ml),
            None => 0,
        };
        for &(label, count) in &row[start..] {
            if count >= required(label) {
                candidates.push(label);
            }
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    if candidates.is_empty() {
        return Vec::new();
    }

    // Pass 2 — survivors per candidate: merge-join each head's sorted
    // histogram row against the sorted candidate list. Heads are visited in
    // ascending order, so each survivor list stays sorted.
    let mut survivors: Vec<Vec<VertexId>> = vec![Vec::new(); candidates.len()];
    for &h in heads {
        let row = csr.neighbor_label_histogram(h);
        let start = row.partition_point(|&(l, _)| l < candidates[0]);
        let mut j = 0;
        for &(label, count) in &row[start..] {
            while j < candidates.len() && candidates[j] < label {
                j += 1;
            }
            if j == candidates.len() {
                break;
            }
            if candidates[j] == label && count >= required(label) {
                survivors[j].push(h);
            }
        }
    }

    let mut children = Vec::new();
    for (cand, surviving) in candidates.into_iter().zip(survivors) {
        if surviving.len() < sigma {
            continue;
        }
        let mut new_leaves = Vec::with_capacity(leaf_labels.len() + 1);
        new_leaves.extend_from_slice(leaf_labels);
        new_leaves.push(cand);
        children.push((head_label, new_leaves, surviving));
    }
    children
}

/// Histogram of the labels of `v`'s neighbors as a hash map.
///
/// Retained for API compatibility; new code should prefer the allocation-free
/// [`LabeledGraph::neighbor_label_histogram`] slice.
pub fn neighbor_label_counts(graph: &LabeledGraph, v: VertexId) -> FxHashMap<Label, usize> {
    graph
        .neighbor_label_histogram(v)
        .iter()
        .map(|&(label, count)| (label, count as usize))
        .collect()
}

pub mod reference {
    //! The original hash-map-based Stage-I enumeration, retained as the
    //! baseline the spider-mining benchmarks measure speedup against and as a
    //! second implementation for the catalog-equivalence property tests.
    //!
    //! Its cost is dominated by one `FxHashMap` histogram per vertex and
    //! hash probes inside the per-level candidate scan — replaced in
    //! [`SpiderCatalog::mine`](super::SpiderCatalog::mine) by the CSR
    //! histogram rows.

    use super::{Spider, SpiderCatalog, SpiderMiningConfig};
    use rustc_hash::FxHashMap;
    use spidermine_graph::graph::{LabeledGraph, VertexId};
    use spidermine_graph::label::Label;

    /// Mines the catalog with the original algorithm. The resulting spiders
    /// (order, labels, heads) are identical to [`SpiderCatalog::mine`] except
    /// for the `include_single_vertex` emission order, which the original
    /// left to hash-map iteration order.
    pub fn mine(graph: &LabeledGraph, config: &SpiderMiningConfig) -> SpiderCatalog {
        let sigma = config.support_threshold.max(1);
        let neighbor_counts: Vec<FxHashMap<Label, usize>> = graph
            .vertices()
            .map(|v| {
                let mut counts = FxHashMap::default();
                for &u in graph.neighbors(v) {
                    *counts.entry(graph.label(u)).or_insert(0) += 1;
                }
                counts
            })
            .collect();
        let mut heads_by_label: FxHashMap<Label, Vec<VertexId>> = FxHashMap::default();
        for v in graph.vertices() {
            heads_by_label.entry(graph.label(v)).or_default().push(v);
        }

        let mut catalog = SpiderCatalog::default();
        let mut frontier: Vec<(Label, Vec<Label>, Vec<VertexId>)> = Vec::new();
        for (&label, heads) in &heads_by_label {
            if heads.len() >= sigma {
                if config.include_single_vertex {
                    catalog.push(label, Vec::new(), heads.clone());
                }
                frontier.push((label, Vec::new(), heads.clone()));
            }
        }
        frontier.sort_by_key(|(l, _, _)| *l);

        let mut leaves = 0;
        while !frontier.is_empty() && leaves < config.max_leaves {
            leaves += 1;
            let mut next: Vec<(Label, Vec<Label>, Vec<VertexId>)> = Vec::new();
            for (head_label, leaf_labels, heads) in &frontier {
                if catalog.spiders.len() >= config.max_spiders {
                    break;
                }
                let min_label = leaf_labels.last().copied().unwrap_or(Label(0));
                let mut candidates: Vec<Label> = Vec::new();
                {
                    let mut seen: FxHashMap<Label, ()> = FxHashMap::default();
                    for &h in heads {
                        for (&label, &count) in &neighbor_counts[h.index()] {
                            if label < min_label {
                                continue;
                            }
                            let required = leaf_labels.iter().filter(|&&l| l == label).count();
                            if count > required {
                                seen.entry(label).or_insert(());
                            }
                        }
                    }
                    candidates.extend(seen.keys().copied());
                    candidates.sort_unstable();
                }
                for cand in candidates {
                    if catalog.spiders.len() >= config.max_spiders {
                        break;
                    }
                    let required = leaf_labels.iter().filter(|&&l| l == cand).count() + 1;
                    let surviving: Vec<VertexId> = heads
                        .iter()
                        .copied()
                        .filter(|h| {
                            neighbor_counts[h.index()].get(&cand).copied().unwrap_or(0) >= required
                        })
                        .collect();
                    if surviving.len() < sigma {
                        continue;
                    }
                    let mut new_leaves = leaf_labels.clone();
                    new_leaves.push(cand);
                    catalog.push(*head_label, new_leaves.clone(), surviving.clone());
                    next.push((*head_label, new_leaves, surviving));
                }
            }
            frontier = next;
        }
        catalog
    }

    /// The original `SpiderCatalog::matching_at`: rebuilds the neighbor-label
    /// histogram of `v` as a hash map and one requirement map per candidate
    /// spider — two allocations per check that the CSR version does without.
    pub fn matching_at(
        catalog: &SpiderCatalog,
        graph: &LabeledGraph,
        v: VertexId,
    ) -> Vec<super::SpiderId> {
        let counts = super::neighbor_label_counts(graph, v);
        catalog
            .with_head_label(graph.label(v))
            .iter()
            .copied()
            .filter(|&id| {
                let mut requirements: FxHashMap<Label, usize> = FxHashMap::default();
                for &l in &catalog.get(id).leaf_labels {
                    *requirements.entry(l).or_insert(0) += 1;
                }
                requirements
                    .iter()
                    .all(|(label, &need)| counts.get(label).copied().unwrap_or(0) >= need)
            })
            .collect()
    }

    /// Asserts two catalogs describe the same spider set in the same order.
    pub fn catalogs_equal(a: &SpiderCatalog, b: &SpiderCatalog) -> bool {
        a.len() == b.len()
            && a.spiders()
                .iter()
                .zip(b.spiders())
                .all(|(x, y): (&Spider, &Spider)| {
                    x.head_label == y.head_label
                        && x.leaf_labels == y.leaf_labels
                        && x.heads == y.heads
                })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Graph: two identical stars (head label 0 with leaves 1, 1, 2) plus one
    /// head label 0 with a single leaf label 1.
    fn two_star_graph() -> LabeledGraph {
        LabeledGraph::from_parts(
            &[
                Label(0),
                Label(1),
                Label(1),
                Label(2), // star A: v0 head
                Label(0),
                Label(1),
                Label(1),
                Label(2), // star B: v4 head
                Label(0),
                Label(1), // small star: v8 head
            ],
            &[(0, 1), (0, 2), (0, 3), (4, 5), (4, 6), (4, 7), (8, 9)],
        )
    }

    fn default_config(sigma: usize) -> SpiderMiningConfig {
        SpiderMiningConfig {
            support_threshold: sigma,
            ..SpiderMiningConfig::default()
        }
    }

    #[test]
    fn mines_the_full_star_with_support_two() {
        let g = two_star_graph();
        let catalog = SpiderCatalog::mine(&g, &default_config(2));
        // The full star head=0, leaves={1,1,2} must be found with exactly heads {v0, v4}.
        let full = catalog
            .spiders()
            .iter()
            .find(|s| s.leaf_labels == vec![Label(1), Label(1), Label(2)])
            .expect("full star mined");
        assert_eq!(full.head_label, Label(0));
        assert_eq!(full.support(), 2);
        assert!(full.heads.contains(&VertexId(0)));
        assert!(full.heads.contains(&VertexId(4)));
    }

    #[test]
    fn sub_stars_are_also_mined_with_larger_support() {
        let g = two_star_graph();
        let catalog = SpiderCatalog::mine(&g, &default_config(2));
        let single_leaf = catalog
            .spiders()
            .iter()
            .find(|s| s.head_label == Label(0) && s.leaf_labels == vec![Label(1)])
            .expect("single-leaf spider mined");
        assert_eq!(single_leaf.support(), 3);
    }

    #[test]
    fn support_threshold_prunes_rare_spiders() {
        let g = two_star_graph();
        let catalog = SpiderCatalog::mine(&g, &default_config(3));
        // Only spiders supported by all three label-0 heads survive: the
        // {1}-leaf star (and nothing with label-2 leaves or two leaves).
        assert!(catalog.spiders().iter().all(|s| s.support() >= 3));
        assert!(catalog
            .spiders()
            .iter()
            .any(|s| s.leaf_labels == vec![Label(1)]));
        assert!(!catalog
            .spiders()
            .iter()
            .any(|s| s.leaf_labels.contains(&Label(2))));
    }

    #[test]
    fn leaf_multisets_are_sorted_and_unique() {
        let g = two_star_graph();
        let catalog = SpiderCatalog::mine(&g, &default_config(2));
        let mut seen = std::collections::HashSet::new();
        for s in catalog.spiders() {
            let mut sorted = s.leaf_labels.clone();
            sorted.sort();
            assert_eq!(sorted, s.leaf_labels, "leaf labels must be sorted");
            assert!(
                seen.insert((s.head_label, s.leaf_labels.clone())),
                "duplicate spider {:?}",
                s
            );
        }
    }

    #[test]
    fn max_leaves_bounds_spider_size() {
        let g = two_star_graph();
        let config = SpiderMiningConfig {
            support_threshold: 2,
            max_leaves: 1,
            ..SpiderMiningConfig::default()
        };
        let catalog = SpiderCatalog::mine(&g, &config);
        assert!(catalog.spiders().iter().all(|s| s.size() <= 1));
    }

    #[test]
    fn max_spiders_caps_catalog_size() {
        let g = two_star_graph();
        let config = SpiderMiningConfig {
            support_threshold: 2,
            max_spiders: 3,
            ..SpiderMiningConfig::default()
        };
        let catalog = SpiderCatalog::mine(&g, &config);
        assert!(catalog.len() <= 3);
        // The first spiders of the uncapped run are kept.
        let full = SpiderCatalog::mine(&g, &default_config(2));
        for (a, b) in catalog.spiders().iter().zip(full.spiders()) {
            assert_eq!(a.head_label, b.head_label);
            assert_eq!(a.leaf_labels, b.leaf_labels);
            assert_eq!(a.heads, b.heads);
        }
    }

    #[test]
    fn to_pattern_reconstructs_the_star() {
        let spider = Spider {
            id: 0,
            head_label: Label(7),
            leaf_labels: vec![Label(1), Label(2)],
            heads: vec![],
        };
        let p = spider.to_pattern();
        assert_eq!(p.vertex_count(), 3);
        assert_eq!(p.edge_count(), 2);
        assert_eq!(p.label(VertexId(0)), Label(7));
        assert_eq!(p.degree(VertexId(0)), 2);
    }

    #[test]
    fn matching_at_respects_capacity() {
        let g = two_star_graph();
        let catalog = SpiderCatalog::mine(&g, &default_config(2));
        let at_small_head = catalog.matching_at(&g, VertexId(8));
        // Only spiders needing at most one label-1 leaf match at v8.
        for id in &at_small_head {
            let s = catalog.get(*id);
            assert!(s.leaf_labels.len() <= 1);
        }
        let at_big_head = catalog.matching_at(&g, VertexId(0));
        assert!(at_big_head.len() >= at_small_head.len());
        // Leaf vertices (label 1) host no label-0-headed spiders.
        assert!(catalog
            .matching_at(&g, VertexId(1))
            .iter()
            .all(|&id| catalog.get(id).head_label == Label(1)));
    }

    #[test]
    fn include_single_vertex_emits_zero_leaf_spiders() {
        let g = two_star_graph();
        let config = SpiderMiningConfig {
            support_threshold: 2,
            include_single_vertex: true,
            ..SpiderMiningConfig::default()
        };
        let catalog = SpiderCatalog::mine(&g, &config);
        assert!(catalog.spiders().iter().any(|s| s.leaf_labels.is_empty()));
        let config = SpiderMiningConfig {
            support_threshold: 2,
            include_single_vertex: false,
            ..SpiderMiningConfig::default()
        };
        let catalog = SpiderCatalog::mine(&g, &config);
        assert!(catalog.spiders().iter().all(|s| !s.leaf_labels.is_empty()));
    }

    #[test]
    fn largest_returns_max_leaf_spider() {
        let g = two_star_graph();
        let catalog = SpiderCatalog::mine(&g, &default_config(2));
        assert_eq!(catalog.largest().expect("non-empty").size(), 3);
    }

    #[test]
    fn empty_graph_yields_empty_catalog() {
        let catalog = SpiderCatalog::mine(&LabeledGraph::new(), &SpiderMiningConfig::default());
        assert!(catalog.is_empty());
        assert_eq!(catalog.len(), 0);
        assert!(catalog.largest().is_none());
    }

    #[test]
    fn matches_at_checks_label_and_capacity() {
        let g = two_star_graph();
        let spider = Spider {
            id: 0,
            head_label: Label(0),
            leaf_labels: vec![Label(1), Label(1)],
            heads: vec![],
        };
        assert!(spider.matches_at(&g, VertexId(0)));
        assert!(
            !spider.matches_at(&g, VertexId(8)),
            "only one label-1 neighbor"
        );
        assert!(!spider.matches_at(&g, VertexId(1)), "wrong head label");
    }

    #[test]
    fn csr_miner_matches_reference_catalog() {
        let g = two_star_graph();
        for sigma in [1, 2, 3] {
            let config = default_config(sigma);
            let fast = SpiderCatalog::mine(&g, &config);
            let slow = reference::mine(&g, &config);
            assert!(
                reference::catalogs_equal(&fast, &slow),
                "catalogs diverge at sigma {sigma}"
            );
        }
    }

    #[test]
    fn neighbor_label_counts_matches_histogram() {
        let g = two_star_graph();
        let counts = neighbor_label_counts(&g, VertexId(0));
        assert_eq!(counts.get(&Label(1)), Some(&2));
        assert_eq!(counts.get(&Label(2)), Some(&1));
        assert_eq!(counts.get(&Label(0)), None);
    }
}
