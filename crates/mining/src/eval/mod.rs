//! The incremental embedding-evaluation layer.
//!
//! Support evaluation is the hot path of every miner in the workspace, and
//! before this layer it was dominated by two redundancies: child patterns
//! were re-matched from scratch even though they differ from their parent by
//! one edge and the parent's embeddings were in hand, and the same canonical
//! pattern was re-evaluated every time a loop met it again. The eval layer
//! removes both, behind three pieces:
//!
//! * [`EmbeddingStore`] — the columnar embedding arena (one flat `VertexId`
//!   pool, [`EmbeddingSetId`] handles), replacing the `Vec<Embedding>` lists
//!   cloned through growth, merging and pooling. Its [`EmbeddingStore::extend`]
//!   runs the incremental engine
//!   ([`iso::extend_embeddings`](spidermine_graph::iso::extend_embeddings));
//!   [`EmbeddingStore::discover`] is the retained scratch-matcher fallback.
//! * [`SupportOracle`] — pluggable support evaluation;
//!   [`MemoOracle`] memoizes per canonical pattern (signature buckets + VF2
//!   confirmation) so merge detection, pool selection and sampling walks never
//!   evaluate the same pattern twice.
//! * [`bitset`] — the shared [`VertexBitset`] / vertex-set dedup helpers that
//!   `support` and `embedding` previously each owned a copy of.
//!
//! See `DESIGN.md` § "Incremental evaluation layer" for the invariants.

pub mod bitset;
pub mod oracle;
pub mod store;

pub use bitset::{popcount_words, popcount_words_scalar, VertexBitset};
pub use oracle::{DirectOracle, MemoOracle, OracleStats, PatternMemo, SupportOracle};
pub use store::{EmbeddingSetId, EmbeddingSetView, EmbeddingStore, FlatEmbeddings};
