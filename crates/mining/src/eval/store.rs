//! The columnar embedding arena: one flat `VertexId` pool, one slice per
//! pattern.
//!
//! Every miner in the workspace carries patterns around together with their
//! embedding lists. Before the eval layer those lists were `Vec<Embedding>` —
//! one heap allocation per embedding, cloned wholesale whenever a pattern was
//! copied into a pool, a beam, or a merge candidate. [`EmbeddingStore`]
//! replaces the owned lists with handles: embeddings of one pattern live back
//! to back in a single flat pool (row-major, `arity` host vertices per row),
//! and a pattern carries an [`EmbeddingSetId`] — copying a pattern copies 4
//! bytes.
//!
//! The store is also where the two embedding *evaluation* strategies meet:
//!
//! * [`EmbeddingStore::extend`] — the incremental engine
//!   ([`iso::extend_embeddings`]): grow a parent set by one pattern edge
//!   against the CSR index.
//! * [`EmbeddingStore::discover`] — the retained scratch matcher
//!   ([`iso::find_embeddings`]), the fallback when no parent set exists or
//!   the parent set was truncated (an incomplete parent cannot prove its
//!   children complete).
//!
//! Parallel workers build [`FlatEmbeddings`] scratch buffers — or whole
//! per-task arenas (*shards*) — and the driver interns them sequentially,
//! which keeps each arena single-writer and runs deterministic. The store is
//! internally **segmented** so absorbing a shard is span stitching, not a
//! copy: [`EmbeddingStore::absorb`] / [`EmbeddingStore::absorb_shards`] take
//! ownership of the shard's pool segments and only rebase the set metadata —
//! the driver-side cost of merging a parallel round's arenas is O(sets), not
//! O(vertices). With one writer and no absorbed shards the store degenerates
//! to the original single-pool, single-writer arena. See `DESIGN.md`
//! § "Incremental evaluation layer".

use crate::embedding::Embedding;
use crate::support::SupportMeasure;
use rustc_hash::FxHashMap;
use spidermine_graph::graph::{LabeledGraph, VertexId};
use spidermine_graph::iso::{self, EdgeExtension};

/// Handle to one embedding set inside an [`EmbeddingStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EmbeddingSetId(u32);

impl EmbeddingSetId {
    /// The raw arena index (stable until a compaction).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Span of one embedding set inside one pool segment.
#[derive(Clone, Copy, Debug)]
struct SetMeta {
    /// Pool segment the rows live in (absorbed shards keep their own
    /// segment; a set never spans two).
    segment: u32,
    start: u32,
    rows: u32,
    arity: u32,
    /// False when a cap truncated the set: its rows are a valid prefix of the
    /// full embedding set, but incremental extension from it may miss
    /// children, so extenders must fall back to the scratch matcher if they
    /// need completeness.
    complete: bool,
}

/// The SoA embedding arena. See the module docs.
///
/// The vertex pool is a list of segments: new rows append to the last
/// segment, and absorbing a shard moves the shard's segments in wholesale
/// (span stitching — no row is copied). Compaction
/// ([`EmbeddingStore::compacted`]) rebuilds into a single segment.
#[derive(Clone, Debug)]
pub struct EmbeddingStore {
    segments: Vec<Vec<VertexId>>,
    /// Total pool length across segments (kept so `pool_len` is O(1)).
    total_len: usize,
    sets: Vec<SetMeta>,
}

impl Default for EmbeddingStore {
    fn default() -> Self {
        Self {
            segments: vec![Vec::new()],
            total_len: 0,
            sets: Vec::new(),
        }
    }
}

/// A borrowed view of one embedding set: arity plus the flat row slice.
#[derive(Clone, Copy, Debug)]
pub struct EmbeddingSetView<'a> {
    arity: usize,
    flat: &'a [VertexId],
    complete: bool,
}

impl<'a> EmbeddingSetView<'a> {
    /// Number of embeddings in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.flat.len().checked_div(self.arity).unwrap_or(0)
    }

    /// True if the set holds no embeddings.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.flat.is_empty()
    }

    /// Pattern arity: host vertices per row.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The raw flat row-major storage.
    #[inline]
    pub fn flat(&self) -> &'a [VertexId] {
        self.flat
    }

    /// True unless a cap truncated the set during discovery/extension.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Row `i` as a host-vertex slice.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [VertexId] {
        &self.flat[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterates the rows in insertion order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &'a [VertexId]> + Clone {
        let arity = self.arity.max(1);
        self.flat.chunks_exact(arity)
    }

    /// Materializes the set back into owned `Vec<Embedding>` form (the legacy
    /// interface of `MinedPattern` / `StreamedPattern`).
    pub fn to_embeddings(&self) -> Vec<Embedding> {
        self.rows().map(|r| r.to_vec()).collect()
    }

    /// Support of the owning pattern under `measure`, computed straight off
    /// the flat rows.
    pub fn support(&self, measure: SupportMeasure) -> usize {
        measure.compute_rows(self.arity, self.rows(), self.len())
    }
}

/// An owned flat embedding buffer, built by parallel workers and interned
/// into the arena sequentially ([`EmbeddingStore::insert_scratch`]).
#[derive(Clone, Debug)]
pub struct FlatEmbeddings {
    arity: usize,
    complete: bool,
    data: Vec<VertexId>,
}

impl FlatEmbeddings {
    /// An empty buffer for embeddings of `arity` host vertices each.
    pub fn new(arity: usize) -> Self {
        Self {
            arity,
            complete: true,
            data: Vec::new(),
        }
    }

    /// Appends one embedding row.
    ///
    /// # Panics
    /// Panics if the row width disagrees with the buffer's arity.
    pub fn push_row(&mut self, row: &[VertexId]) {
        assert_eq!(row.len(), self.arity, "row arity mismatch");
        self.data.extend_from_slice(row);
    }

    /// Appends a row given as a parent row plus one appended vertex.
    pub fn push_extended_row(&mut self, parent: &[VertexId], appended: &[VertexId]) {
        debug_assert_eq!(parent.len() + appended.len(), self.arity);
        self.data.extend_from_slice(parent);
        self.data.extend_from_slice(appended);
    }

    /// Marks the buffer as truncated by a cap.
    pub fn mark_truncated(&mut self) {
        self.complete = false;
    }

    /// Appends rows of `other` (same arity) until this buffer holds `cap`
    /// rows. The order-preserving reduce step of parallel row-building
    /// folds: concatenating per-range buffers left-to-right under a cap
    /// yields exactly the first `cap` rows a sequential scan would keep.
    pub fn append_capped(&mut self, other: &FlatEmbeddings, cap: usize) {
        debug_assert_eq!(self.arity, other.arity, "arity mismatch");
        let take = other.len().min(cap.saturating_sub(self.len()));
        self.data
            .extend_from_slice(&other.data[..take * self.arity]);
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.arity).unwrap_or(0)
    }

    /// True if no rows were pushed.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Views the buffer like a stored set.
    pub fn view(&self) -> EmbeddingSetView<'_> {
        EmbeddingSetView {
            arity: self.arity,
            flat: &self.data,
            complete: self.complete,
        }
    }
}

impl EmbeddingStore {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of embedding sets stored (dead sets included, until a
    /// compaction).
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Total `VertexId`s in the pool (the arena's memory footprint).
    pub fn pool_len(&self) -> usize {
        self.total_len
    }

    /// Number of pool segments (1 until a shard is absorbed; compaction
    /// returns to 1).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Interns a set given as flat row-major storage.
    pub fn insert_flat(
        &mut self,
        arity: usize,
        flat: &[VertexId],
        complete: bool,
    ) -> EmbeddingSetId {
        debug_assert!(arity > 0 || flat.is_empty(), "ragged rows");
        debug_assert!(
            arity == 0 || flat.len().is_multiple_of(arity),
            "ragged rows"
        );
        let segment = self.segments.len() as u32 - 1;
        let writer = self.segments.last_mut().expect("a writer segment");
        let start = writer.len() as u32;
        writer.extend_from_slice(flat);
        self.total_len += flat.len();
        let rows = flat.len().checked_div(arity).unwrap_or(0) as u32;
        let id = EmbeddingSetId(self.sets.len() as u32);
        self.sets.push(SetMeta {
            segment,
            start,
            rows,
            arity: arity as u32,
            complete,
        });
        id
    }

    /// Interns a worker's scratch buffer.
    pub fn insert_scratch(&mut self, scratch: &FlatEmbeddings) -> EmbeddingSetId {
        self.insert_flat(scratch.arity, &scratch.data, scratch.complete)
    }

    /// Interns a legacy `Vec<Embedding>` list (rows must share one arity).
    pub fn insert_embeddings(
        &mut self,
        arity: usize,
        embeddings: &[Embedding],
        complete: bool,
    ) -> EmbeddingSetId {
        let segment = self.segments.len() as u32 - 1;
        let writer = self.segments.last_mut().expect("a writer segment");
        let start = writer.len() as u32;
        for e in embeddings {
            debug_assert_eq!(e.len(), arity, "row arity mismatch");
            writer.extend_from_slice(e);
        }
        self.total_len += arity * embeddings.len();
        let id = EmbeddingSetId(self.sets.len() as u32);
        self.sets.push(SetMeta {
            segment,
            start,
            rows: embeddings.len() as u32,
            arity: arity as u32,
            complete,
        });
        id
    }

    /// Discovers up to `limit` embeddings of `pattern` in `host` with the
    /// scratch matcher and interns them — the from-scratch entry into the
    /// arena, and the fallback of the incremental path.
    pub fn discover(
        &mut self,
        pattern: &LabeledGraph,
        host: &LabeledGraph,
        limit: usize,
    ) -> EmbeddingSetId {
        let rows = iso::find_embeddings(pattern, host, limit);
        let truncated = rows.len() >= limit;
        self.insert_embeddings(pattern.vertex_count(), &rows, !truncated)
    }

    /// Extends `parent` by one pattern edge with the incremental engine
    /// ([`iso::extend_embeddings`]) and interns the child set.
    ///
    /// The child set is marked complete only when the parent was complete and
    /// no `limit` truncation occurred.
    pub fn extend(
        &mut self,
        host: &LabeledGraph,
        parent: EmbeddingSetId,
        extension: EdgeExtension,
        limit: usize,
    ) -> EmbeddingSetId {
        let meta = self.sets[parent.index()];
        let parent_complete = meta.complete;
        let arity = meta.arity as usize;
        let child_arity = match extension {
            EdgeExtension::NewVertex { .. } => arity + 1,
            EdgeExtension::ClosingEdge { .. } => arity,
        };
        // The pool may reallocate while the child rows are appended, so the
        // extension writes into a scratch buffer first.
        let mut out = Vec::new();
        let parent_flat = self.flat_of(meta);
        let outcome = iso::extend_embeddings(host, arity, parent_flat, extension, limit, &mut out);
        self.insert_flat(child_arity, &out, parent_complete && !outcome.truncated)
    }

    /// The view of a stored set.
    #[inline]
    pub fn view(&self, id: EmbeddingSetId) -> EmbeddingSetView<'_> {
        let meta = self.sets[id.index()];
        EmbeddingSetView {
            arity: meta.arity as usize,
            flat: self.flat_of(meta),
            complete: meta.complete,
        }
    }

    /// Materializes a stored set into the legacy `Vec<Embedding>` form.
    pub fn to_embeddings(&self, id: EmbeddingSetId) -> Vec<Embedding> {
        self.view(id).to_embeddings()
    }

    /// Support of the pattern owning `id`, under `measure`.
    pub fn support(&self, measure: SupportMeasure, id: EmbeddingSetId) -> usize {
        self.view(id).support(measure)
    }

    #[inline]
    fn flat_of(&self, meta: SetMeta) -> &[VertexId] {
        let start = meta.start as usize;
        let len = (meta.rows * meta.arity) as usize;
        &self.segments[meta.segment as usize][start..start + len]
    }

    /// Splices another arena onto this one **without copying the vertex
    /// pool**: the shard's segments are moved in wholesale and only the set
    /// metadata is rebased (span stitching). Every id of `other` stays valid
    /// after adding the returned base offset (via
    /// [`EmbeddingStore::rebased`]). This is how parallel workers' per-task
    /// arenas land in the driver's global arena in deterministic order.
    pub fn absorb(&mut self, other: EmbeddingStore) -> u32 {
        let base = self.sets.len() as u32;
        // Map the shard's segment indices onto this store's, dropping empty
        // segments (their only possible sets are empty, which any segment can
        // host at offset 0).
        let mut segment_map = vec![0u32; other.segments.len()];
        for (i, segment) in other.segments.into_iter().enumerate() {
            if segment.is_empty() {
                segment_map[i] = 0;
            } else {
                segment_map[i] = self.segments.len() as u32;
                self.total_len += segment.len();
                self.segments.push(segment);
            }
        }
        self.sets.extend(other.sets.iter().map(|m| {
            if m.rows == 0 || m.arity == 0 {
                // Empty set: host it at the front of segment 0.
                SetMeta {
                    segment: 0,
                    start: 0,
                    ..*m
                }
            } else {
                SetMeta {
                    segment: segment_map[m.segment as usize],
                    ..*m
                }
            }
        }));
        base
    }

    /// Absorbs a parallel round's worker shards in driver order, returning
    /// one rebase offset per shard (for [`EmbeddingStore::rebased`]). Pure
    /// span stitching — no shard's vertex pool is copied.
    pub fn absorb_shards(&mut self, shards: impl IntoIterator<Item = EmbeddingStore>) -> Vec<u32> {
        shards.into_iter().map(|shard| self.absorb(shard)).collect()
    }

    /// Rebases an id returned from a worker-local arena onto this arena,
    /// given the base offset [`EmbeddingStore::absorb`] returned.
    pub fn rebased(id: EmbeddingSetId, base: u32) -> EmbeddingSetId {
        EmbeddingSetId(id.0 + base)
    }

    /// Rebuilds the arena keeping only `live` sets, returning the new arena
    /// and the id remap. Copy-on-grow never reclaims, so long-running miners
    /// call this at sequential points once dead spans dominate.
    pub fn compacted(
        &self,
        live: &[EmbeddingSetId],
    ) -> (EmbeddingStore, FxHashMap<EmbeddingSetId, EmbeddingSetId>) {
        let mut fresh = EmbeddingStore::new();
        let mut remap = FxHashMap::default();
        for &id in live {
            if remap.contains_key(&id) {
                continue;
            }
            let meta = self.sets[id.index()];
            let new_id = fresh.insert_flat(meta.arity as usize, self.flat_of(meta), meta.complete);
            remap.insert(id, new_id);
        }
        (fresh, remap)
    }

    /// Segment count above which span stitching has fragmented the pool
    /// enough that [`EmbeddingStore::maybe_compact`] rebuilds regardless of
    /// the live fraction.
    const MAX_SEGMENTS: usize = 1024;

    /// The one compaction policy every long-lived owner uses: once the pool
    /// exceeds `min_pool` `VertexId`s and `live` owns less than half of it —
    /// or span stitching has fragmented the pool past
    /// `MAX_SEGMENTS` (1024) — rebuild in place (into a single
    /// segment) and return the id remap the caller must apply to its
    /// handles. `None` means nothing changed. Call only at sequential points.
    pub fn maybe_compact(
        &mut self,
        live: &[EmbeddingSetId],
        min_pool: usize,
    ) -> Option<FxHashMap<EmbeddingSetId, EmbeddingSetId>> {
        let fragmented = self.segments.len() > Self::MAX_SEGMENTS;
        if !fragmented && (self.pool_len() < min_pool || self.live_fraction(live) >= 0.5) {
            return None;
        }
        let (fresh, remap) = self.compacted(live);
        *self = fresh;
        Some(remap)
    }

    /// Fraction of the pool owned by `live` sets (1.0 for an empty pool).
    pub fn live_fraction(&self, live: &[EmbeddingSetId]) -> f64 {
        if self.total_len == 0 {
            return 1.0;
        }
        let mut seen = vec![false; self.sets.len()];
        let mut live_len = 0usize;
        for &id in live {
            if !std::mem::replace(&mut seen[id.index()], true) {
                let meta = self.sets[id.index()];
                live_len += (meta.rows * meta.arity) as usize;
            }
        }
        live_len as f64 / self.total_len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidermine_graph::label::Label;

    fn host() -> LabeledGraph {
        LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(0), Label(1)],
            &[(0, 1), (2, 3), (1, 2)],
        )
    }

    #[test]
    fn discover_then_view_round_trips() {
        let h = host();
        let pattern = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let mut store = EmbeddingStore::new();
        let id = store.discover(&pattern, &h, usize::MAX);
        let view = store.view(id);
        assert_eq!(view.len(), 3);
        assert_eq!(view.arity(), 2);
        assert!(view.is_complete());
        assert_eq!(
            store.to_embeddings(id),
            iso::find_embeddings(&pattern, &h, usize::MAX)
        );
        assert_eq!(view.row(0), &[VertexId(0), VertexId(1)][..]);
    }

    #[test]
    fn truncated_discovery_is_marked_incomplete() {
        let h = host();
        let pattern = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let mut store = EmbeddingStore::new();
        let id = store.discover(&pattern, &h, 2);
        assert_eq!(store.view(id).len(), 2);
        assert!(!store.view(id).is_complete());
    }

    #[test]
    fn extend_matches_scratch_discovery_as_sets() {
        let h = host();
        let edge = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let mut store = EmbeddingStore::new();
        let parent = store.discover(&edge, &h, usize::MAX);
        let ext = EdgeExtension::NewVertex {
            anchor: VertexId(1),
            label: Label(0),
        };
        let child_id = store.extend(&h, parent, ext, usize::MAX);
        assert!(store.view(child_id).is_complete());
        let child = iso::apply_edge_extension(&edge, ext);
        let mut incremental = store.to_embeddings(child_id);
        incremental.sort_unstable();
        let mut scratch = iso::find_embeddings(&child, &h, usize::MAX);
        scratch.sort_unstable();
        assert_eq!(incremental, scratch);
    }

    #[test]
    fn extension_of_incomplete_parent_stays_incomplete() {
        let h = host();
        let edge = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let mut store = EmbeddingStore::new();
        let parent = store.discover(&edge, &h, 2);
        let child = store.extend(
            &h,
            parent,
            EdgeExtension::ClosingEdge {
                u: VertexId(0),
                v: VertexId(1),
            },
            usize::MAX,
        );
        assert!(!store.view(child).is_complete());
    }

    #[test]
    fn absorb_rebases_ids() {
        let h = host();
        let edge = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let mut global = EmbeddingStore::new();
        let g0 = global.discover(&edge, &h, usize::MAX);
        let mut local = EmbeddingStore::new();
        let l0 = local.discover(&edge, &h, 1);
        let expected = local.to_embeddings(l0);
        let base = global.absorb(local);
        let rebased = EmbeddingStore::rebased(l0, base);
        assert_ne!(rebased, g0);
        assert_eq!(global.to_embeddings(rebased), expected);
        assert_eq!(global.view(g0).len(), 3, "existing sets untouched");
    }

    /// `absorb` must be span stitching, not a copy: the shard's rows stay at
    /// the same heap address after landing in the global store.
    #[test]
    fn absorb_stitches_without_copying() {
        let h = host();
        let edge = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let mut global = EmbeddingStore::new();
        global.discover(&edge, &h, usize::MAX);
        let mut shard = EmbeddingStore::new();
        let local = shard.discover(&edge, &h, usize::MAX);
        let expected = shard.to_embeddings(local);
        let shard_ptr = shard.view(local).flat().as_ptr();
        let before_segments = global.segment_count();
        let base = global.absorb(shard);
        let rebased = EmbeddingStore::rebased(local, base);
        assert_eq!(global.to_embeddings(rebased), expected);
        assert!(
            std::ptr::eq(global.view(rebased).flat().as_ptr(), shard_ptr),
            "absorb copied the shard's pool instead of stitching it"
        );
        assert_eq!(global.segment_count(), before_segments + 1);
    }

    #[test]
    fn absorb_shards_rebases_each_shard_in_order() {
        let h = host();
        let edge = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let mut global = EmbeddingStore::new();
        let mut shards = Vec::new();
        let mut locals: Vec<Option<EmbeddingSetId>> = Vec::new();
        for limit in [1usize, 2, 3] {
            let mut shard = EmbeddingStore::new();
            locals.push(Some(shard.discover(&edge, &h, limit)));
            shards.push(shard);
        }
        // An empty shard in the middle must not break the stitching.
        shards.insert(1, EmbeddingStore::new());
        locals.insert(1, None);
        let expected = [1usize, 0, 2, 3];
        let bases = global.absorb_shards(shards);
        assert_eq!(bases.len(), 4);
        for (slot, (&base, local)) in bases.iter().zip(&locals).enumerate() {
            if let Some(id) = *local {
                let rebased = EmbeddingStore::rebased(id, base);
                assert_eq!(
                    global.view(rebased).len(),
                    expected[slot],
                    "shard {slot} landed wrong"
                );
            }
        }
        // Writes after stitching still work (the writer is the last segment).
        let fresh = global.discover(&edge, &h, usize::MAX);
        assert_eq!(global.view(fresh).len(), 3);
    }

    #[test]
    fn compaction_drops_dead_sets_and_remaps() {
        let h = host();
        let edge = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let mut store = EmbeddingStore::new();
        let dead = store.discover(&edge, &h, usize::MAX);
        let live = store.discover(&edge, &h, 2);
        assert!(store.live_fraction(&[live]) < 1.0);
        let expected = store.to_embeddings(live);
        let (fresh, remap) = store.compacted(&[live]);
        assert_eq!(fresh.set_count(), 1);
        assert!(fresh.pool_len() < store.pool_len());
        assert_eq!(fresh.to_embeddings(remap[&live]), expected);
        assert!(!remap.contains_key(&dead));
    }

    #[test]
    fn scratch_buffers_intern_verbatim() {
        let mut scratch = FlatEmbeddings::new(2);
        scratch.push_row(&[VertexId(4), VertexId(5)]);
        scratch.push_extended_row(&[VertexId(6)], &[VertexId(7)]);
        assert_eq!(scratch.len(), 2);
        scratch.mark_truncated();
        let mut store = EmbeddingStore::new();
        let id = store.insert_scratch(&scratch);
        assert!(!store.view(id).is_complete());
        assert_eq!(
            store.to_embeddings(id),
            vec![
                vec![VertexId(4), VertexId(5)],
                vec![VertexId(6), VertexId(7)]
            ]
        );
    }
}
