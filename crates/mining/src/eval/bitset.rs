//! A flat bitset over host-vertex ids, shared by every embedding-dedup and
//! support path in the workspace.
//!
//! Before the eval layer, `mining::support` kept a private copy of this
//! structure while `mining::embedding` deduplicated through hash sets of
//! sorted keys — two implementations of "have I seen this vertex (set)
//! before". This module is the single shared helper both build on.

use spidermine_graph::graph::VertexId;

/// A flat bitset over host-vertex ids, reused across positions/embeddings so
/// set membership checks allocate once instead of building a hash set per
/// pattern position or per embedding.
#[derive(Clone, Debug, Default)]
pub struct VertexBitset {
    words: Vec<u64>,
    /// Indices of words that have at least one bit set, for sparse clearing.
    touched: Vec<u32>,
}

impl VertexBitset {
    /// A bitset able to hold ids `0..=max_vertex_id`.
    pub fn with_capacity(max_vertex_id: u32) -> Self {
        let words = vec![0u64; (max_vertex_id as usize + 64) / 64];
        Self {
            words,
            touched: Vec::new(),
        }
    }

    /// Grows the bitset (zero-filled) so it can hold `v`.
    pub fn grow_to(&mut self, max_vertex_id: u32) {
        let needed = (max_vertex_id as usize + 64) / 64;
        if needed > self.words.len() {
            self.words.resize(needed, 0);
        }
    }

    /// Sets the bit for `v`; returns `true` if it was previously clear.
    #[inline]
    pub fn insert(&mut self, v: VertexId) -> bool {
        let word = (v.0 / 64) as usize;
        let bit = 1u64 << (v.0 % 64);
        if self.words[word] & bit != 0 {
            return false;
        }
        if self.words[word] == 0 {
            self.touched.push(word as u32);
        }
        self.words[word] |= bit;
        true
    }

    /// True if the bit for `v` is set.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.words[(v.0 / 64) as usize] & (1u64 << (v.0 % 64)) != 0
    }

    /// Clears only the words that were touched since the last clear.
    pub fn clear(&mut self) {
        for &w in &self.touched {
            self.words[w as usize] = 0;
        }
        self.touched.clear();
    }
}

/// Deduplicates embedding rows by their host-vertex *set* (two automorphic
/// placements of a pattern cover the same occurrence): returns, in first-seen
/// order, the indices of the rows with distinct sorted vertex sets.
///
/// This is the one shared implementation behind
/// [`distinct_embedding_count`](crate::support::distinct_embedding_count) and
/// [`EmbeddedPattern::dedup_by_vertex_set`](crate::embedding::EmbeddedPattern::dedup_by_vertex_set).
pub fn distinct_vertex_set_indices<'a, I>(rows: I) -> Vec<usize>
where
    I: Iterator<Item = &'a [VertexId]>,
{
    // Sort-and-dedup over (sorted key, original index): one allocation per
    // row key plus one sort, instead of a hash set of vectors.
    let mut keys: Vec<(Vec<VertexId>, usize)> = rows
        .enumerate()
        .map(|(i, row)| {
            let mut key = row.to_vec();
            key.sort_unstable();
            (key, i)
        })
        .collect();
    keys.sort_unstable();
    keys.dedup_by(|a, b| a.0 == b.0);
    let mut survivors: Vec<usize> = keys.into_iter().map(|(_, i)| i).collect();
    survivors.sort_unstable();
    survivors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_clear() {
        let mut bits = VertexBitset::with_capacity(200);
        assert!(bits.insert(VertexId(0)));
        assert!(bits.insert(VertexId(199)));
        assert!(!bits.insert(VertexId(0)), "double insert reports seen");
        assert!(bits.contains(VertexId(0)));
        assert!(!bits.contains(VertexId(1)));
        bits.clear();
        assert!(!bits.contains(VertexId(0)));
        assert!(bits.insert(VertexId(0)), "clear really clears");
    }

    #[test]
    fn grow_to_extends_capacity() {
        let mut bits = VertexBitset::with_capacity(10);
        bits.grow_to(500);
        assert!(bits.insert(VertexId(500)));
        assert!(bits.contains(VertexId(500)));
    }

    #[test]
    fn distinct_indices_keep_first_of_each_set() {
        let rows: Vec<Vec<VertexId>> = vec![
            vec![VertexId(0), VertexId(1)],
            vec![VertexId(1), VertexId(0)], // same set as row 0
            vec![VertexId(2), VertexId(3)],
        ];
        let idx = distinct_vertex_set_indices(rows.iter().map(|r| r.as_slice()));
        assert_eq!(idx, vec![0, 2]);
    }
}
