//! A flat bitset over host-vertex ids, shared by every embedding-dedup and
//! support path in the workspace.
//!
//! Before the eval layer, `mining::support` kept a private copy of this
//! structure while `mining::embedding` deduplicated through hash sets of
//! sorted keys — two implementations of "have I seen this vertex (set)
//! before". This module is the single shared helper both build on.

use spidermine_graph::graph::VertexId;

/// A flat bitset over host-vertex ids, reused across positions/embeddings so
/// set membership checks allocate once instead of building a hash set per
/// pattern position or per embedding.
#[derive(Clone, Debug, Default)]
pub struct VertexBitset {
    words: Vec<u64>,
    /// Indices of words that have at least one bit set, for sparse clearing.
    touched: Vec<u32>,
}

impl VertexBitset {
    /// A bitset able to hold ids `0..=max_vertex_id`.
    pub fn with_capacity(max_vertex_id: u32) -> Self {
        let words = vec![0u64; (max_vertex_id as usize + 64) / 64];
        Self {
            words,
            touched: Vec::new(),
        }
    }

    /// Grows the bitset (zero-filled) so it can hold `v`.
    pub fn grow_to(&mut self, max_vertex_id: u32) {
        let needed = (max_vertex_id as usize + 64) / 64;
        if needed > self.words.len() {
            self.words.resize(needed, 0);
        }
    }

    /// Sets the bit for `v`; returns `true` if it was previously clear.
    #[inline]
    pub fn insert(&mut self, v: VertexId) -> bool {
        let word = (v.0 / 64) as usize;
        let bit = 1u64 << (v.0 % 64);
        if self.words[word] & bit != 0 {
            return false;
        }
        if self.words[word] == 0 {
            self.touched.push(word as u32);
        }
        self.words[word] |= bit;
        true
    }

    /// True if the bit for `v` is set.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.words[(v.0 / 64) as usize] & (1u64 << (v.0 % 64)) != 0
    }

    /// Clears only the words that were touched since the last clear.
    pub fn clear(&mut self) {
        for &w in &self.touched {
            self.words[w as usize] = 0;
        }
        self.touched.clear();
    }

    /// Sets the bits for a whole row of vertices: one OR per vertex, no
    /// membership branch (use [`VertexBitset::insert`] when the caller needs
    /// the was-it-new answer), growing to fit ids past the current capacity.
    /// The word-parallel support kernels use this for their branchless
    /// marking passes without a pre-scan for the maximum id.
    #[inline]
    pub fn insert_all(&mut self, vs: &[VertexId]) {
        for &v in vs {
            let word = (v.0 / 64) as usize;
            if word >= self.words.len() {
                // Doubling growth so a rising id sequence stays amortized O(n).
                let target = (word + 1).max(self.words.len() * 2);
                self.words.resize(target, 0);
            }
            let prev = self.words[word];
            if prev == 0 {
                self.touched.push(word as u32);
            }
            self.words[word] = prev | 1u64 << (v.0 % 64);
        }
    }

    /// True if *any* vertex of the row is already marked. Ids past the
    /// current capacity are simply not marked. Early-exits on the first hit;
    /// the common miss path is a tight load/test loop with no per-element
    /// call overhead.
    #[inline]
    pub fn contains_any(&self, vs: &[VertexId]) -> bool {
        vs.iter().any(|&v| {
            self.words
                .get((v.0 / 64) as usize)
                .is_some_and(|w| w & (1u64 << (v.0 % 64)) != 0)
        })
    }

    /// Number of set bits (popcount sweep over the backing words, through the
    /// dispatched [`popcount_words`] kernel).
    pub fn count_ones(&self) -> usize {
        popcount_words(&self.words)
    }

    /// The backing words (for word-at-a-time callers like the support
    /// kernels' column sweeps).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Portable popcount sweep: one `count_ones` per word. Always compiled and
/// tested — this is the reference the SIMD path must agree with, and the
/// fallback on hardware without AVX2.
pub fn popcount_words_scalar(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Popcount of a word slice, dispatched at runtime: the AVX2 nibble-LUT
/// kernel on x86-64 parts that have it (detected once, cached by
/// `is_x86_feature_detected!`), the scalar sweep everywhere else. Both paths
/// compute the identical sum — the dispatch is a pure speed choice.
pub fn popcount_words(words: &[u64]) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        // The LUT kernel wins on long sweeps; short slices aren't worth the
        // vector setup.
        if words.len() >= 8 && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 presence was just verified at runtime.
            return unsafe { avx2::popcount_words_avx2(words) };
        }
    }
    popcount_words_scalar(words)
}

/// AVX2 positional-popcount kernel (Mula's nibble-LUT `pshufb` method): each
/// 256-bit lane splits its bytes into low/high nibbles, looks both up in a
/// 16-entry bit-count table, and accumulates with `sad` against zero. Only
/// compiled on x86-64; only *executed* behind the runtime feature check in
/// [`popcount_words`].
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256, _mm256_extract_epi64,
        _mm256_loadu_si256, _mm256_sad_epu8, _mm256_set1_epi8, _mm256_setr_epi8,
        _mm256_setzero_si256, _mm256_shuffle_epi8, _mm256_srli_epi16,
    };

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn popcount_words_avx2(words: &[u64]) -> usize {
        // Bit counts of the nibble values 0..=15, replicated per 128-bit lane
        // (the `pshufb` table layout).
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
            3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let mut acc: __m256i = _mm256_setzero_si256();
        let chunks = words.chunks_exact(4);
        let tail = chunks.remainder();
        for chunk in chunks {
            let v = _mm256_loadu_si256(chunk.as_ptr().cast::<__m256i>());
            let lo = _mm256_and_si256(v, low_mask);
            let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
            let counts =
                _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
            // Horizontal byte sum per 64-bit lane; per-byte counts are <= 8,
            // so no i8 overflow before the widening `sad`.
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(counts, _mm256_setzero_si256()));
        }
        let mut total = (_mm256_extract_epi64(acc, 0)
            + _mm256_extract_epi64(acc, 1)
            + _mm256_extract_epi64(acc, 2)
            + _mm256_extract_epi64(acc, 3)) as usize;
        for w in tail {
            total += w.count_ones() as usize;
        }
        total
    }
}

/// Deduplicates embedding rows by their host-vertex *set* (two automorphic
/// placements of a pattern cover the same occurrence): returns, in first-seen
/// order, the indices of the rows with distinct sorted vertex sets.
///
/// This is the one shared implementation behind
/// [`distinct_embedding_count`](crate::support::distinct_embedding_count) and
/// [`EmbeddedPattern::dedup_by_vertex_set`](crate::embedding::EmbeddedPattern::dedup_by_vertex_set).
pub fn distinct_vertex_set_indices<'a, I>(rows: I) -> Vec<usize>
where
    I: Iterator<Item = &'a [VertexId]>,
{
    // Sort-and-dedup over (sorted key, original index): one allocation per
    // row key plus one sort, instead of a hash set of vectors.
    let mut keys: Vec<(Vec<VertexId>, usize)> = rows
        .enumerate()
        .map(|(i, row)| {
            let mut key = row.to_vec();
            key.sort_unstable();
            (key, i)
        })
        .collect();
    keys.sort_unstable();
    keys.dedup_by(|a, b| a.0 == b.0);
    let mut survivors: Vec<usize> = keys.into_iter().map(|(_, i)| i).collect();
    survivors.sort_unstable();
    survivors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_clear() {
        let mut bits = VertexBitset::with_capacity(200);
        assert!(bits.insert(VertexId(0)));
        assert!(bits.insert(VertexId(199)));
        assert!(!bits.insert(VertexId(0)), "double insert reports seen");
        assert!(bits.contains(VertexId(0)));
        assert!(!bits.contains(VertexId(1)));
        bits.clear();
        assert!(!bits.contains(VertexId(0)));
        assert!(bits.insert(VertexId(0)), "clear really clears");
    }

    #[test]
    fn grow_to_extends_capacity() {
        let mut bits = VertexBitset::with_capacity(10);
        bits.grow_to(500);
        assert!(bits.insert(VertexId(500)));
        assert!(bits.contains(VertexId(500)));
    }

    #[test]
    fn bulk_ops_match_scalar_ops() {
        let row: Vec<VertexId> = [3u32, 64, 65, 127, 128, 3].map(VertexId).to_vec();
        let mut bulk = VertexBitset::with_capacity(200);
        bulk.insert_all(&row);
        let mut scalar = VertexBitset::with_capacity(200);
        for &v in &row {
            scalar.insert(v);
        }
        assert_eq!(bulk.words(), scalar.words());
        assert_eq!(bulk.count_ones(), 5);
        assert!(bulk.contains_any(&[VertexId(10), VertexId(64)]));
        assert!(!bulk.contains_any(&[VertexId(10), VertexId(11)]));
        assert!(!bulk.contains_any(&[]));
        bulk.clear();
        assert_eq!(bulk.count_ones(), 0, "touched tracking covers bulk inserts");
    }

    #[test]
    fn popcount_dispatch_agrees_with_scalar() {
        // Long enough to exercise the vector body and the tail remainder.
        let words: Vec<u64> = (0..67u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i << 13))
            .collect();
        for len in [0, 1, 3, 8, 31, 64, 67] {
            assert_eq!(
                popcount_words(&words[..len]),
                popcount_words_scalar(&words[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn distinct_indices_keep_first_of_each_set() {
        let rows: Vec<Vec<VertexId>> = vec![
            vec![VertexId(0), VertexId(1)],
            vec![VertexId(1), VertexId(0)], // same set as row 0
            vec![VertexId(2), VertexId(3)],
        ];
        let idx = distinct_vertex_set_indices(rows.iter().map(|r| r.as_slice()));
        assert_eq!(idx, vec![0, 2]);
    }
}
