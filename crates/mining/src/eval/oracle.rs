//! Memoized support evaluation keyed on canonical pattern identity.
//!
//! Miners re-evaluate the same pattern over and over: SpiderMine's Stage II
//! re-derives the same merged unions every iteration, Stage III re-ranks
//! exhausted survivors every round, the final selection walks a pool that
//! grew from the same lineages, and ORIGAMI's random walks keep proposing
//! children the previous walks already measured. A [`SupportOracle`] wraps a
//! [`SupportMeasure`] with a memo keyed on canonical pattern identity —
//! invariant-signature buckets confirmed by VF2, the same discipline as
//! [`PatternIndex`](crate::pattern_index::PatternIndex) — so each canonical
//! pattern is evaluated once.
//!
//! **Determinism contract**: the memoized value is whatever the *first*
//! evaluation of a canonical pattern produced. Callers must therefore only
//! consult the oracle at sequential points, or over collections with no two
//! isomorphic members (e.g. an isomorphism-deduplicated pool) — otherwise a
//! parallel race would decide which embedding list seeds the memo and runs
//! would stop being reproducible. `spidermine`'s inner growth loops keep
//! computing raw supports for exactly this reason; see `DESIGN.md`
//! § "Incremental evaluation layer".

use crate::eval::store::EmbeddingSetView;
use crate::support::SupportMeasure;
use rustc_hash::FxHashMap;
use spidermine_graph::graph::LabeledGraph;
use spidermine_graph::iso;
use spidermine_graph::signature::{invariant_signature, InvariantSignature};
use std::sync::Mutex;

/// Hit/miss counters of an oracle (or a [`PatternMemo`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Lookups answered from the memo.
    pub hits: usize,
    /// Lookups that had to evaluate.
    pub misses: usize,
}

/// Pluggable support evaluation: every miner asks the oracle instead of
/// calling [`SupportMeasure::compute`] directly at its pattern-level decision
/// points, so memoization (or an alternative support semantics) can be swapped
/// in through [`MineContext`](crate::context::MineContext).
pub trait SupportOracle: Send + Sync {
    /// The measure this oracle evaluates.
    fn measure(&self) -> SupportMeasure;

    /// Support of `pattern` given its embedding set.
    fn support(&self, pattern: &LabeledGraph, embeddings: EmbeddingSetView<'_>) -> usize;

    /// Hit/miss counters (all zero for non-memoizing oracles).
    fn stats(&self) -> OracleStats;
}

/// A memo from canonical pattern identity to an arbitrary `usize` value.
///
/// The generic building block behind [`MemoOracle`]; also used directly where
/// the memoized quantity is not an embedding-list support (e.g. ORIGAMI's
/// transaction support, which is a pure function of the isomorphism class).
#[derive(Default)]
pub struct PatternMemo {
    buckets: FxHashMap<InvariantSignature, Vec<(LabeledGraph, usize)>>,
    hits: usize,
    misses: usize,
}

impl PatternMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks `pattern` up without inserting.
    pub fn lookup(&mut self, pattern: &LabeledGraph) -> Option<usize> {
        let sig = invariant_signature(pattern);
        if let Some(bucket) = self.buckets.get(&sig) {
            for (candidate, value) in bucket {
                if iso::are_isomorphic(candidate, pattern) {
                    self.hits += 1;
                    return Some(*value);
                }
            }
        }
        self.misses += 1;
        None
    }

    /// Inserts `value` for `pattern` unless an isomorphic entry already
    /// exists; returns the canonical (first-inserted) value either way.
    pub fn insert_if_absent(&mut self, pattern: &LabeledGraph, value: usize) -> usize {
        let sig = invariant_signature(pattern);
        let bucket = self.buckets.entry(sig).or_default();
        for (candidate, existing) in bucket.iter() {
            if iso::are_isomorphic(candidate, pattern) {
                return *existing;
            }
        }
        bucket.push((pattern.clone(), value));
        value
    }

    /// Memoized evaluation: returns the cached value for `pattern`'s
    /// isomorphism class, or computes, stores and returns `f()`.
    pub fn get_or_insert_with(
        &mut self,
        pattern: &LabeledGraph,
        f: impl FnOnce() -> usize,
    ) -> usize {
        if let Some(v) = self.lookup(pattern) {
            return v;
        }
        let v = f();
        self.insert_if_absent(pattern, v)
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> OracleStats {
        OracleStats {
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Number of distinct canonical patterns stored.
    pub fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// True if nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

/// The memoizing [`SupportOracle`]: signature-bucketed, VF2-confirmed memo in
/// front of a [`SupportMeasure`]. Safe to share across threads; on a memo
/// miss the measure is computed *outside* the lock so concurrent distinct
/// patterns do not serialize on each other's evaluation.
pub struct MemoOracle {
    measure: SupportMeasure,
    memo: Mutex<PatternMemo>,
    // Telemetry counters are cache-line padded, one apiece: workers racing
    // through the memo bump these on every probe, and sharing a line would
    // ping-pong it between cores. `hits`/`misses` are this oracle's own
    // (what `stats()` reports for the run); `global_*` are the process-wide
    // aggregates in the telemetry registry, resolved once here so the hot
    // probe path never takes the registry lock.
    hits: spidermine_telemetry::Counter,
    misses: spidermine_telemetry::Counter,
    global_hits: spidermine_telemetry::Counter,
    global_misses: spidermine_telemetry::Counter,
}

impl MemoOracle {
    /// A fresh memoizing oracle for `measure`.
    pub fn new(measure: SupportMeasure) -> Self {
        let global = spidermine_telemetry::global();
        Self {
            measure,
            memo: Mutex::new(PatternMemo::new()),
            hits: spidermine_telemetry::Counter::default(),
            misses: spidermine_telemetry::Counter::default(),
            global_hits: global.counter("oracle_hits_total"),
            global_misses: global.counter("oracle_misses_total"),
        }
    }
}

impl SupportOracle for MemoOracle {
    fn measure(&self) -> SupportMeasure {
        self.measure
    }

    fn support(&self, pattern: &LabeledGraph, embeddings: EmbeddingSetView<'_>) -> usize {
        if let Some(v) = self.memo.lock().expect("oracle lock").lookup(pattern) {
            self.hits.inc();
            self.global_hits.inc();
            return v;
        }
        self.misses.inc();
        self.global_misses.inc();
        let v = embeddings.support(self.measure);
        self.memo
            .lock()
            .expect("oracle lock")
            .insert_if_absent(pattern, v)
    }

    fn stats(&self) -> OracleStats {
        OracleStats {
            hits: self.hits.get() as usize,
            misses: self.misses.get() as usize,
        }
    }
}

/// The non-memoizing oracle: every call evaluates the measure. Useful when a
/// caller needs the support of *this exact embedding list* even for patterns
/// already seen with a different list.
pub struct DirectOracle {
    measure: SupportMeasure,
}

impl DirectOracle {
    /// A pass-through oracle for `measure`.
    pub fn new(measure: SupportMeasure) -> Self {
        Self { measure }
    }
}

impl SupportOracle for DirectOracle {
    fn measure(&self) -> SupportMeasure {
        self.measure
    }

    fn support(&self, _pattern: &LabeledGraph, embeddings: EmbeddingSetView<'_>) -> usize {
        embeddings.support(self.measure)
    }

    fn stats(&self) -> OracleStats {
        OracleStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::store::EmbeddingStore;
    use spidermine_graph::label::Label;

    fn host() -> LabeledGraph {
        LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(0), Label(1)],
            &[(0, 1), (2, 3), (1, 2)],
        )
    }

    #[test]
    fn memo_oracle_hits_on_isomorphic_repeat() {
        let h = host();
        let edge = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let relabeled = LabeledGraph::from_parts(&[Label(1), Label(0)], &[(0, 1)]);
        let mut store = EmbeddingStore::new();
        let full = store.discover(&edge, &h, usize::MAX);
        let partial = store.discover(&edge, &h, 1);
        let oracle = MemoOracle::new(SupportMeasure::EmbeddingCount);
        let first = oracle.support(&edge, store.view(full));
        assert_eq!(first, 3);
        // Isomorphic pattern, different (smaller) embedding list: the memo
        // answers with the first evaluation.
        let second = oracle.support(&relabeled, store.view(partial));
        assert_eq!(second, first);
        let stats = oracle.stats();
        assert_eq!(stats, OracleStats { hits: 1, misses: 1 });
    }

    #[test]
    fn memo_oracle_distinguishes_non_isomorphic_patterns() {
        let h = host();
        let edge = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let other = LabeledGraph::from_parts(&[Label(1), Label(0), Label(0)], &[(0, 1), (0, 2)]);
        let mut store = EmbeddingStore::new();
        let a = store.discover(&edge, &h, usize::MAX);
        let b = store.discover(&other, &h, usize::MAX);
        let oracle = MemoOracle::new(SupportMeasure::EmbeddingCount);
        assert_eq!(oracle.support(&edge, store.view(a)), 3);
        assert_eq!(oracle.support(&other, store.view(b)), 1);
        assert_eq!(oracle.stats().misses, 2);
    }

    #[test]
    fn direct_oracle_never_memoizes() {
        let h = host();
        let edge = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let mut store = EmbeddingStore::new();
        let full = store.discover(&edge, &h, usize::MAX);
        let partial = store.discover(&edge, &h, 1);
        let oracle = DirectOracle::new(SupportMeasure::EmbeddingCount);
        assert_eq!(oracle.support(&edge, store.view(full)), 3);
        assert_eq!(oracle.support(&edge, store.view(partial)), 1);
        assert_eq!(oracle.stats(), OracleStats::default());
    }

    #[test]
    fn pattern_memo_evaluates_each_class_once() {
        let mut memo = PatternMemo::new();
        let a = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let b = LabeledGraph::from_parts(&[Label(1), Label(0)], &[(0, 1)]);
        let mut evaluations = 0;
        for g in [&a, &b, &a] {
            memo.get_or_insert_with(g, || {
                evaluations += 1;
                42
            });
        }
        assert_eq!(evaluations, 1);
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.stats().hits, 2);
    }
}
