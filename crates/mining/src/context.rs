//! Execution context shared by every miner behind the unified engine API:
//! cooperative cancellation, progress reporting, streaming pattern delivery,
//! and per-stage wall-clock accounting.
//!
//! The context lives here (rather than in the `engine` crate) because it is
//! threaded *through* the algorithm crates: `spidermine` checks the
//! [`CancelToken`] inside its stage loops and streams accepted patterns as it
//! selects them, and each baseline does the same in its search loop. The
//! `engine` crate re-exports everything in this module as part of its public
//! surface.

use crate::embedding::Embedding;
use crate::eval::{MemoOracle, OracleStats, SupportOracle};
use crate::support::SupportMeasure;
use spidermine_graph::graph::LabeledGraph;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cooperative cancellation flag, cheap to clone and safe to fire from any
/// thread (or from inside a progress callback).
///
/// Miners poll [`CancelToken::is_cancelled`] at their stage/iteration
/// boundaries; a fired token makes the run wind down and return whatever it
/// has found so far as a partial result — cancellation is not an error.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    fired: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn fire(&self) {
        self.fired.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::fire`] has been called.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }
}

/// A coarse progress event emitted by a miner. Events fire at stage and
/// iteration boundaries — frequent enough to drive a progress bar or a
/// cancellation decision, rare enough to cost nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgressEvent {
    /// A named stage began (e.g. `"spiders"`, `"identify"`, `"recover"`).
    StageStarted { stage: &'static str },
    /// One iteration of a stage's main loop finished.
    Iteration {
        stage: &'static str,
        iteration: usize,
    },
    /// A named stage finished.
    StageFinished { stage: &'static str },
}

/// One pattern delivered through the streaming channel (and collected into
/// the final outcome): the pattern graph, its support under the miner's
/// measure, and the embeddings the miner retained for it (possibly empty —
/// not every algorithm tracks embeddings).
#[derive(Clone, Debug)]
pub struct StreamedPattern {
    /// The pattern graph.
    pub pattern: LabeledGraph,
    /// Support under the producing miner's measure.
    pub support: usize,
    /// Retained embeddings (may be empty or capped).
    pub embeddings: Vec<Embedding>,
}

/// Wall-clock time of one named stage of a run.
#[derive(Clone, Debug)]
pub struct StageTiming {
    /// Stage name (stable identifiers, e.g. `"spiders"`).
    pub stage: &'static str,
    /// Elapsed wall-clock time of the stage.
    pub elapsed: Duration,
}

type ProgressFn = Box<dyn FnMut(&ProgressEvent) + Send>;
type SinkFn = Box<dyn FnMut(StreamedPattern) + Send>;

/// Mutable execution context handed to the `mine_with` / `run_with` entry
/// points: carries the cancel token, the optional progress callback, the
/// optional streaming sink, and accumulates per-stage timings.
#[derive(Default)]
pub struct MineContext {
    cancel: CancelToken,
    progress: Option<ProgressFn>,
    sink: Option<SinkFn>,
    timings: Vec<StageTiming>,
    cancelled_observed: bool,
    /// Wall-clock deadline armed by [`MineContext::set_deadline_in`]. Checked
    /// by every [`MineContext::is_cancelled`] poll, so an expired deadline
    /// fires the cancel token cooperatively — the run winds down with partial
    /// results exactly like an explicit cancellation, no timer thread needed.
    deadline: Option<Instant>,
    /// True once a poll observed the deadline expired (distinguishes a
    /// timeout from a caller-fired cancellation).
    deadline_hit: bool,
    /// The support oracle miners consult at their pattern-level decision
    /// points. Installed explicitly via [`MineContext::with_support_oracle`],
    /// or created on first use (a [`MemoOracle`] for the miner's configured
    /// measure). Shared so a reused context carries its memo across runs.
    oracle: Option<Arc<dyn SupportOracle>>,
    /// True when `oracle` was installed by the caller (an explicit oracle
    /// overrides any configured measure); false when it was auto-created, in
    /// which case a run configured with a *different* measure gets a fresh
    /// auto-oracle instead of silently inheriting the old measure's memo.
    oracle_explicit: bool,
    /// Telemetry identity of this run: the job's trace id and the span the
    /// run's stage spans parent under (both 0 when untraced). Set by the
    /// scheduler before dispatch, or adopted from the wire for remote jobs.
    trace_id: u64,
    trace_parent: u64,
}

impl std::fmt::Debug for MineContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MineContext")
            .field("cancelled", &self.cancel.is_cancelled())
            .field("has_progress", &self.progress.is_some())
            .field("has_sink", &self.sink.is_some())
            .field("has_oracle", &self.oracle.is_some())
            .field("has_deadline", &self.deadline.is_some())
            .field("timed_out", &self.deadline_hit)
            .field("timings", &self.timings)
            .finish()
    }
}

impl MineContext {
    /// A context with no callbacks and a fresh token.
    pub fn new() -> Self {
        Self::default()
    }

    /// A context polling the given (possibly shared) token.
    pub fn with_cancel(token: CancelToken) -> Self {
        Self {
            cancel: token,
            ..Self::default()
        }
    }

    /// Installs a progress callback (builder style).
    pub fn on_progress<F: FnMut(&ProgressEvent) + Send + 'static>(mut self, f: F) -> Self {
        self.progress = Some(Box::new(f));
        self
    }

    /// Installs a streaming pattern sink (builder style). Every pattern a
    /// miner accepts into its result is also pushed through the sink, in
    /// acceptance order, before the run returns.
    pub fn on_pattern<F: FnMut(StreamedPattern) + Send + 'static>(mut self, f: F) -> Self {
        self.sink = Some(Box::new(f));
        self
    }

    /// Installs a support oracle (builder style). Miners consult it instead
    /// of computing their configured [`SupportMeasure`] directly, so callers
    /// can share one memo across runs or swap in different support semantics.
    /// An explicitly installed oracle wins even when its measure differs from
    /// a run's configuration — that is the override point.
    pub fn with_support_oracle(mut self, oracle: Arc<dyn SupportOracle>) -> Self {
        self.oracle = Some(oracle);
        self.oracle_explicit = true;
        self
    }

    /// The context's support oracle: the explicitly installed one, or a
    /// memoizing [`MemoOracle`] for `default_measure` (auto-created on first
    /// use and kept across runs so a reused context carries its memo). An
    /// auto-created oracle is tied to its measure: a later run configured
    /// with a different measure gets a fresh oracle rather than silently
    /// evaluating under the previous run's measure.
    pub fn support_oracle(&mut self, default_measure: SupportMeasure) -> Arc<dyn SupportOracle> {
        match &self.oracle {
            Some(o) if self.oracle_explicit || o.measure() == default_measure => o.clone(),
            _ => {
                let fresh: Arc<dyn SupportOracle> = Arc::new(MemoOracle::new(default_measure));
                self.oracle = Some(fresh.clone());
                fresh
            }
        }
    }

    /// Hit/miss statistics of the context's oracle, if one exists yet.
    pub fn oracle_stats(&self) -> Option<OracleStats> {
        self.oracle.as_ref().map(|o| o.stats())
    }

    /// A clone of the context's cancel token (to fire it from elsewhere).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Adopts a telemetry identity: `trace` is the job's trace id and
    /// `parent` the span id the run's stage spans nest under. With tracing
    /// disarmed (or ids left at 0) the hooks stay single-load no-ops.
    pub fn set_trace(&mut self, trace: u64, parent: u64) {
        self.trace_id = trace;
        self.trace_parent = parent;
    }

    /// Builder-style [`MineContext::set_trace`].
    pub fn with_trace(mut self, trace: u64, parent: u64) -> Self {
        self.set_trace(trace, parent);
        self
    }

    /// The run's `(trace id, parent span id)`, `(0, 0)` when untraced.
    pub fn trace(&self) -> (u64, u64) {
        (self.trace_id, self.trace_parent)
    }

    /// Arms (or re-arms) a wall-clock deadline `budget` from now (builder
    /// style). See [`MineContext::set_deadline_in`].
    pub fn with_deadline_in(mut self, budget: Duration) -> Self {
        self.set_deadline_in(budget);
        self
    }

    /// Arms (or re-arms) a wall-clock deadline `budget` from now. Once the
    /// deadline passes, the next [`MineContext::is_cancelled`] poll fires the
    /// cancel token, so the run winds down cooperatively with partial
    /// results — a timeout is not an error. Re-arming resets the
    /// [`MineContext::timed_out`] flag, so a reused context reports each
    /// run's own timeout.
    pub fn set_deadline_in(&mut self, budget: Duration) {
        // A budget too large to represent as an Instant can never fire;
        // treat it as "no deadline" instead of overflowing.
        self.deadline = Instant::now().checked_add(budget);
        self.deadline_hit = false;
    }

    /// The armed deadline instant, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// True if some poll during the run observed the armed deadline expired
    /// (and therefore fired the cancel token).
    pub fn timed_out(&self) -> bool {
        self.deadline_hit
    }

    /// Polls the cancel token (and the armed deadline, if any); remembers a
    /// positive answer so [`MineContext::was_cancelled`] reports it after the
    /// run.
    pub fn is_cancelled(&mut self) -> bool {
        if !self.deadline_hit {
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    self.deadline_hit = true;
                    self.cancel.fire();
                }
            }
        }
        if self.cancel.is_cancelled() {
            self.cancelled_observed = true;
        }
        self.cancelled_observed
    }

    /// True if some `is_cancelled` poll during the run saw a fired token.
    pub fn was_cancelled(&self) -> bool {
        self.cancelled_observed
    }

    /// Emits a progress event to the callback, if any.
    pub fn progress(&mut self, event: ProgressEvent) {
        if let Some(f) = self.progress.as_mut() {
            f(&event);
        }
    }

    /// True if a streaming sink is installed. Miners use this to skip
    /// building [`StreamedPattern`]s (pattern + embedding clones) that no one
    /// would receive; prefer [`MineContext::emit_with`], which checks it.
    pub fn wants_patterns(&self) -> bool {
        self.sink.is_some()
    }

    /// Streams one accepted pattern to the sink, if any. With tracing armed
    /// the acceptance is also recorded as an instant event on the run's
    /// trace (support as the argument).
    pub fn emit(&mut self, pattern: StreamedPattern) {
        spidermine_telemetry::instant("pattern_accepted", self.trace_id, pattern.support as u64);
        if let Some(f) = self.sink.as_mut() {
            f(pattern);
        }
    }

    /// Streams the pattern produced by `build` to the sink — but only calls
    /// `build` when a sink is installed, so sink-less runs (the legacy shims,
    /// benches, experiments) pay nothing for streaming. Acceptance is traced
    /// either way (without a sink the instant's support argument is 0, since
    /// the pattern is never built).
    pub fn emit_with<F: FnOnce() -> StreamedPattern>(&mut self, build: F) {
        match self.sink.as_mut() {
            Some(f) => {
                let pattern = build();
                spidermine_telemetry::instant(
                    "pattern_accepted",
                    self.trace_id,
                    pattern.support as u64,
                );
                f(pattern);
            }
            None => spidermine_telemetry::instant("pattern_accepted", self.trace_id, 0),
        }
    }

    /// Records the elapsed time of a named stage. With tracing armed, also
    /// records the stage as a completed span (back-dated by `elapsed`)
    /// under the context's trace identity — the stage loops call this once
    /// per stage, so the hook is far off the per-candidate hot path.
    pub fn record_stage(&mut self, stage: &'static str, elapsed: Duration) {
        if spidermine_telemetry::armed() {
            let start = spidermine_telemetry::now_nanos()
                .saturating_sub(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
            spidermine_telemetry::span_complete(stage, self.trace_id, self.trace_parent, start);
        }
        self.timings.push(StageTiming { stage, elapsed });
    }

    /// Per-stage timings recorded so far, in execution order.
    pub fn timings(&self) -> &[StageTiming] {
        &self.timings
    }

    /// Moves the recorded timings out of the context.
    pub fn take_timings(&mut self) -> Vec<StageTiming> {
        std::mem::take(&mut self.timings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidermine_graph::label::Label;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn token_fires_once_and_stays_fired() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let t2 = t.clone();
        t2.fire();
        assert!(t.is_cancelled());
        t.fire();
        assert!(t.is_cancelled());
    }

    #[test]
    fn context_remembers_observed_cancellation() {
        let mut ctx = MineContext::new();
        assert!(!ctx.is_cancelled());
        assert!(!ctx.was_cancelled());
        ctx.cancel_token().fire();
        assert!(ctx.is_cancelled());
        assert!(ctx.was_cancelled());
    }

    #[test]
    fn progress_and_sink_callbacks_receive_events() {
        let events = Arc::new(AtomicUsize::new(0));
        let patterns = Arc::new(AtomicUsize::new(0));
        let (e, p) = (events.clone(), patterns.clone());
        let mut ctx = MineContext::new()
            .on_progress(move |_| {
                e.fetch_add(1, Ordering::Relaxed);
            })
            .on_pattern(move |_| {
                p.fetch_add(1, Ordering::Relaxed);
            });
        ctx.progress(ProgressEvent::StageStarted { stage: "spiders" });
        ctx.progress(ProgressEvent::Iteration {
            stage: "identify",
            iteration: 1,
        });
        ctx.emit(StreamedPattern {
            pattern: LabeledGraph::from_parts(&[Label(0)], &[]),
            support: 1,
            embeddings: Vec::new(),
        });
        assert_eq!(events.load(Ordering::Relaxed), 2);
        assert_eq!(patterns.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cancellation_from_inside_a_progress_callback() {
        let mut ctx = MineContext::new();
        let token = ctx.cancel_token();
        ctx = ctx.on_progress(move |e| {
            if matches!(e, ProgressEvent::Iteration { iteration: 2, .. }) {
                token.fire();
            }
        });
        for i in 0..5 {
            if ctx.is_cancelled() {
                break;
            }
            ctx.progress(ProgressEvent::Iteration {
                stage: "identify",
                iteration: i,
            });
        }
        assert!(ctx.was_cancelled());
    }

    #[test]
    fn auto_oracle_follows_the_requested_measure_but_explicit_wins() {
        let mut ctx = MineContext::new();
        let a = ctx.support_oracle(SupportMeasure::MinimumImage);
        let b = ctx.support_oracle(SupportMeasure::MinimumImage);
        assert!(Arc::ptr_eq(&a, &b), "same measure reuses the memo");
        let c = ctx.support_oracle(SupportMeasure::GreedyDisjoint);
        assert_eq!(c.measure(), SupportMeasure::GreedyDisjoint);
        assert!(
            !Arc::ptr_eq(&a, &c),
            "a different measure must not inherit the old memo"
        );
        // An explicitly installed oracle overrides any configured measure.
        let explicit: Arc<dyn SupportOracle> =
            Arc::new(crate::eval::MemoOracle::new(SupportMeasure::EmbeddingCount));
        let mut ctx = MineContext::new().with_support_oracle(explicit.clone());
        let got = ctx.support_oracle(SupportMeasure::MinimumImage);
        assert!(Arc::ptr_eq(&explicit, &got));
        assert_eq!(got.measure(), SupportMeasure::EmbeddingCount);
    }

    #[test]
    fn expired_deadline_fires_the_token_and_reports_timeout() {
        let mut ctx = MineContext::new().with_deadline_in(Duration::ZERO);
        assert!(!ctx.timed_out(), "deadline only observed at a poll");
        assert!(ctx.is_cancelled());
        assert!(ctx.timed_out());
        assert!(ctx.was_cancelled());
        assert!(ctx.cancel_token().is_cancelled(), "timeout fires the token");
    }

    #[test]
    fn unexpired_deadline_does_not_cancel() {
        let mut ctx = MineContext::new().with_deadline_in(Duration::from_secs(3600));
        assert!(!ctx.is_cancelled());
        assert!(!ctx.timed_out());
    }

    #[test]
    fn rearming_a_deadline_resets_the_timeout_flag() {
        let mut ctx = MineContext::new().with_deadline_in(Duration::ZERO);
        assert!(ctx.is_cancelled());
        assert!(ctx.timed_out());
        ctx.set_deadline_in(Duration::from_secs(3600));
        assert!(!ctx.timed_out());
        // The token stays fired (cancellation is sticky), but the new
        // deadline itself has not expired.
        assert!(ctx.is_cancelled());
    }

    #[test]
    fn unrepresentably_large_deadline_never_fires_or_panics() {
        let mut ctx = MineContext::new().with_deadline_in(Duration::MAX);
        assert!(!ctx.is_cancelled());
        assert!(!ctx.timed_out());
    }

    #[test]
    fn explicit_cancellation_is_not_a_timeout() {
        let mut ctx = MineContext::new().with_deadline_in(Duration::from_secs(3600));
        ctx.cancel_token().fire();
        assert!(ctx.is_cancelled());
        assert!(!ctx.timed_out());
    }

    #[test]
    fn stage_timings_accumulate_in_order() {
        let mut ctx = MineContext::new();
        ctx.record_stage("spiders", Duration::from_millis(3));
        ctx.record_stage("identify", Duration::from_millis(5));
        let t = ctx.timings();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].stage, "spiders");
        assert_eq!(t[1].stage, "identify");
        assert_eq!(ctx.take_timings().len(), 2);
        assert!(ctx.timings().is_empty());
    }
}
