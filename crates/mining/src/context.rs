//! Execution context shared by every miner behind the unified engine API:
//! cooperative cancellation, progress reporting, streaming pattern delivery,
//! and per-stage wall-clock accounting.
//!
//! The context lives here (rather than in the `engine` crate) because it is
//! threaded *through* the algorithm crates: `spidermine` checks the
//! [`CancelToken`] inside its stage loops and streams accepted patterns as it
//! selects them, and each baseline does the same in its search loop. The
//! `engine` crate re-exports everything in this module as part of its public
//! surface.

use crate::embedding::Embedding;
use crate::eval::{MemoOracle, OracleStats, SupportOracle};
use crate::support::SupportMeasure;
use spidermine_graph::graph::LabeledGraph;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Cooperative cancellation flag, cheap to clone and safe to fire from any
/// thread (or from inside a progress callback).
///
/// Miners poll [`CancelToken::is_cancelled`] at their stage/iteration
/// boundaries; a fired token makes the run wind down and return whatever it
/// has found so far as a partial result — cancellation is not an error.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    fired: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn fire(&self) {
        self.fired.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::fire`] has been called.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }
}

/// A coarse progress event emitted by a miner. Events fire at stage and
/// iteration boundaries — frequent enough to drive a progress bar or a
/// cancellation decision, rare enough to cost nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgressEvent {
    /// A named stage began (e.g. `"spiders"`, `"identify"`, `"recover"`).
    StageStarted { stage: &'static str },
    /// One iteration of a stage's main loop finished.
    Iteration {
        stage: &'static str,
        iteration: usize,
    },
    /// A named stage finished.
    StageFinished { stage: &'static str },
}

/// One pattern delivered through the streaming channel (and collected into
/// the final outcome): the pattern graph, its support under the miner's
/// measure, and the embeddings the miner retained for it (possibly empty —
/// not every algorithm tracks embeddings).
#[derive(Clone, Debug)]
pub struct StreamedPattern {
    /// The pattern graph.
    pub pattern: LabeledGraph,
    /// Support under the producing miner's measure.
    pub support: usize,
    /// Retained embeddings (may be empty or capped).
    pub embeddings: Vec<Embedding>,
}

/// Wall-clock time of one named stage of a run.
#[derive(Clone, Debug)]
pub struct StageTiming {
    /// Stage name (stable identifiers, e.g. `"spiders"`).
    pub stage: &'static str,
    /// Elapsed wall-clock time of the stage.
    pub elapsed: Duration,
}

type ProgressFn = Box<dyn FnMut(&ProgressEvent) + Send>;
type SinkFn = Box<dyn FnMut(StreamedPattern) + Send>;

/// Mutable execution context handed to the `mine_with` / `run_with` entry
/// points: carries the cancel token, the optional progress callback, the
/// optional streaming sink, and accumulates per-stage timings.
#[derive(Default)]
pub struct MineContext {
    cancel: CancelToken,
    progress: Option<ProgressFn>,
    sink: Option<SinkFn>,
    timings: Vec<StageTiming>,
    cancelled_observed: bool,
    /// The support oracle miners consult at their pattern-level decision
    /// points. Installed explicitly via [`MineContext::with_support_oracle`],
    /// or created on first use (a [`MemoOracle`] for the miner's configured
    /// measure). Shared so a reused context carries its memo across runs.
    oracle: Option<Arc<dyn SupportOracle>>,
    /// True when `oracle` was installed by the caller (an explicit oracle
    /// overrides any configured measure); false when it was auto-created, in
    /// which case a run configured with a *different* measure gets a fresh
    /// auto-oracle instead of silently inheriting the old measure's memo.
    oracle_explicit: bool,
}

impl std::fmt::Debug for MineContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MineContext")
            .field("cancelled", &self.cancel.is_cancelled())
            .field("has_progress", &self.progress.is_some())
            .field("has_sink", &self.sink.is_some())
            .field("has_oracle", &self.oracle.is_some())
            .field("timings", &self.timings)
            .finish()
    }
}

impl MineContext {
    /// A context with no callbacks and a fresh token.
    pub fn new() -> Self {
        Self::default()
    }

    /// A context polling the given (possibly shared) token.
    pub fn with_cancel(token: CancelToken) -> Self {
        Self {
            cancel: token,
            ..Self::default()
        }
    }

    /// Installs a progress callback (builder style).
    pub fn on_progress<F: FnMut(&ProgressEvent) + Send + 'static>(mut self, f: F) -> Self {
        self.progress = Some(Box::new(f));
        self
    }

    /// Installs a streaming pattern sink (builder style). Every pattern a
    /// miner accepts into its result is also pushed through the sink, in
    /// acceptance order, before the run returns.
    pub fn on_pattern<F: FnMut(StreamedPattern) + Send + 'static>(mut self, f: F) -> Self {
        self.sink = Some(Box::new(f));
        self
    }

    /// Installs a support oracle (builder style). Miners consult it instead
    /// of computing their configured [`SupportMeasure`] directly, so callers
    /// can share one memo across runs or swap in different support semantics.
    /// An explicitly installed oracle wins even when its measure differs from
    /// a run's configuration — that is the override point.
    pub fn with_support_oracle(mut self, oracle: Arc<dyn SupportOracle>) -> Self {
        self.oracle = Some(oracle);
        self.oracle_explicit = true;
        self
    }

    /// The context's support oracle: the explicitly installed one, or a
    /// memoizing [`MemoOracle`] for `default_measure` (auto-created on first
    /// use and kept across runs so a reused context carries its memo). An
    /// auto-created oracle is tied to its measure: a later run configured
    /// with a different measure gets a fresh oracle rather than silently
    /// evaluating under the previous run's measure.
    pub fn support_oracle(&mut self, default_measure: SupportMeasure) -> Arc<dyn SupportOracle> {
        match &self.oracle {
            Some(o) if self.oracle_explicit || o.measure() == default_measure => o.clone(),
            _ => {
                let fresh: Arc<dyn SupportOracle> = Arc::new(MemoOracle::new(default_measure));
                self.oracle = Some(fresh.clone());
                fresh
            }
        }
    }

    /// Hit/miss statistics of the context's oracle, if one exists yet.
    pub fn oracle_stats(&self) -> Option<OracleStats> {
        self.oracle.as_ref().map(|o| o.stats())
    }

    /// A clone of the context's cancel token (to fire it from elsewhere).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Polls the cancel token; remembers a positive answer so
    /// [`MineContext::was_cancelled`] reports it after the run.
    pub fn is_cancelled(&mut self) -> bool {
        if self.cancel.is_cancelled() {
            self.cancelled_observed = true;
        }
        self.cancelled_observed
    }

    /// True if some `is_cancelled` poll during the run saw a fired token.
    pub fn was_cancelled(&self) -> bool {
        self.cancelled_observed
    }

    /// Emits a progress event to the callback, if any.
    pub fn progress(&mut self, event: ProgressEvent) {
        if let Some(f) = self.progress.as_mut() {
            f(&event);
        }
    }

    /// True if a streaming sink is installed. Miners use this to skip
    /// building [`StreamedPattern`]s (pattern + embedding clones) that no one
    /// would receive; prefer [`MineContext::emit_with`], which checks it.
    pub fn wants_patterns(&self) -> bool {
        self.sink.is_some()
    }

    /// Streams one accepted pattern to the sink, if any.
    pub fn emit(&mut self, pattern: StreamedPattern) {
        if let Some(f) = self.sink.as_mut() {
            f(pattern);
        }
    }

    /// Streams the pattern produced by `build` to the sink — but only calls
    /// `build` when a sink is installed, so sink-less runs (the legacy shims,
    /// benches, experiments) pay nothing for streaming.
    pub fn emit_with<F: FnOnce() -> StreamedPattern>(&mut self, build: F) {
        if let Some(f) = self.sink.as_mut() {
            f(build());
        }
    }

    /// Records the elapsed time of a named stage.
    pub fn record_stage(&mut self, stage: &'static str, elapsed: Duration) {
        self.timings.push(StageTiming { stage, elapsed });
    }

    /// Per-stage timings recorded so far, in execution order.
    pub fn timings(&self) -> &[StageTiming] {
        &self.timings
    }

    /// Moves the recorded timings out of the context.
    pub fn take_timings(&mut self) -> Vec<StageTiming> {
        std::mem::take(&mut self.timings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidermine_graph::label::Label;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn token_fires_once_and_stays_fired() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let t2 = t.clone();
        t2.fire();
        assert!(t.is_cancelled());
        t.fire();
        assert!(t.is_cancelled());
    }

    #[test]
    fn context_remembers_observed_cancellation() {
        let mut ctx = MineContext::new();
        assert!(!ctx.is_cancelled());
        assert!(!ctx.was_cancelled());
        ctx.cancel_token().fire();
        assert!(ctx.is_cancelled());
        assert!(ctx.was_cancelled());
    }

    #[test]
    fn progress_and_sink_callbacks_receive_events() {
        let events = Arc::new(AtomicUsize::new(0));
        let patterns = Arc::new(AtomicUsize::new(0));
        let (e, p) = (events.clone(), patterns.clone());
        let mut ctx = MineContext::new()
            .on_progress(move |_| {
                e.fetch_add(1, Ordering::Relaxed);
            })
            .on_pattern(move |_| {
                p.fetch_add(1, Ordering::Relaxed);
            });
        ctx.progress(ProgressEvent::StageStarted { stage: "spiders" });
        ctx.progress(ProgressEvent::Iteration {
            stage: "identify",
            iteration: 1,
        });
        ctx.emit(StreamedPattern {
            pattern: LabeledGraph::from_parts(&[Label(0)], &[]),
            support: 1,
            embeddings: Vec::new(),
        });
        assert_eq!(events.load(Ordering::Relaxed), 2);
        assert_eq!(patterns.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cancellation_from_inside_a_progress_callback() {
        let mut ctx = MineContext::new();
        let token = ctx.cancel_token();
        ctx = ctx.on_progress(move |e| {
            if matches!(e, ProgressEvent::Iteration { iteration: 2, .. }) {
                token.fire();
            }
        });
        for i in 0..5 {
            if ctx.is_cancelled() {
                break;
            }
            ctx.progress(ProgressEvent::Iteration {
                stage: "identify",
                iteration: i,
            });
        }
        assert!(ctx.was_cancelled());
    }

    #[test]
    fn auto_oracle_follows_the_requested_measure_but_explicit_wins() {
        let mut ctx = MineContext::new();
        let a = ctx.support_oracle(SupportMeasure::MinimumImage);
        let b = ctx.support_oracle(SupportMeasure::MinimumImage);
        assert!(Arc::ptr_eq(&a, &b), "same measure reuses the memo");
        let c = ctx.support_oracle(SupportMeasure::GreedyDisjoint);
        assert_eq!(c.measure(), SupportMeasure::GreedyDisjoint);
        assert!(
            !Arc::ptr_eq(&a, &c),
            "a different measure must not inherit the old memo"
        );
        // An explicitly installed oracle overrides any configured measure.
        let explicit: Arc<dyn SupportOracle> =
            Arc::new(crate::eval::MemoOracle::new(SupportMeasure::EmbeddingCount));
        let mut ctx = MineContext::new().with_support_oracle(explicit.clone());
        let got = ctx.support_oracle(SupportMeasure::MinimumImage);
        assert!(Arc::ptr_eq(&explicit, &got));
        assert_eq!(got.measure(), SupportMeasure::EmbeddingCount);
    }

    #[test]
    fn stage_timings_accumulate_in_order() {
        let mut ctx = MineContext::new();
        ctx.record_stage("spiders", Duration::from_millis(3));
        ctx.record_stage("identify", Duration::from_millis(5));
        let t = ctx.timings();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].stage, "spiders");
        assert_eq!(t[1].stage, "identify");
        assert_eq!(ctx.take_timings().len(), 2);
        assert!(ctx.timings().is_empty());
    }
}
