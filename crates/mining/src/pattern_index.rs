//! Isomorphism-aware pattern deduplication.
//!
//! Miners repeatedly generate candidate patterns and must ask "have I seen
//! this pattern (up to isomorphism) before?". Exact canonical codes are
//! expensive for general graphs, so the index follows the paper's philosophy
//! (Section 4.2.2): bucket patterns by a cheap isomorphism-invariant
//! signature, and only run the full VF2 isomorphism test against patterns in
//! the same bucket.

use rustc_hash::FxHashMap;
use spidermine_graph::graph::LabeledGraph;
use spidermine_graph::iso;
use spidermine_graph::signature::{invariant_signature, InvariantSignature};

/// Identifier assigned to each distinct (up to isomorphism) pattern.
pub type PatternId = usize;

/// A deduplicating registry of patterns.
#[derive(Default)]
pub struct PatternIndex {
    patterns: Vec<LabeledGraph>,
    buckets: FxHashMap<InvariantSignature, Vec<PatternId>>,
    /// Number of VF2 isomorphism tests actually executed (for the ablation
    /// bench comparing signature pruning against brute-force checking).
    iso_tests: usize,
}

impl PatternIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `pattern` unless an isomorphic pattern is already present.
    ///
    /// Returns `(id, inserted)` where `id` identifies the canonical
    /// representative and `inserted` says whether the pattern was new.
    pub fn insert(&mut self, pattern: LabeledGraph) -> (PatternId, bool) {
        let sig = invariant_signature(&pattern);
        if let Some(bucket) = self.buckets.get(&sig) {
            for &id in bucket {
                self.iso_tests += 1;
                if iso::are_isomorphic(&self.patterns[id], &pattern) {
                    return (id, false);
                }
            }
        }
        let id = self.patterns.len();
        self.patterns.push(pattern);
        self.buckets.entry(sig).or_default().push(id);
        (id, true)
    }

    /// Returns whether an isomorphic pattern is already present, without inserting.
    pub fn contains(&mut self, pattern: &LabeledGraph) -> bool {
        let sig = invariant_signature(pattern);
        if let Some(bucket) = self.buckets.get(&sig) {
            for &id in bucket {
                self.iso_tests += 1;
                if iso::are_isomorphic(&self.patterns[id], pattern) {
                    return true;
                }
            }
        }
        false
    }

    /// The representative pattern for `id`.
    pub fn get(&self, id: PatternId) -> &LabeledGraph {
        &self.patterns[id]
    }

    /// Number of distinct patterns stored.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True if no patterns are stored.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Number of VF2 isomorphism tests executed so far.
    pub fn iso_tests_run(&self) -> usize {
        self.iso_tests
    }

    /// Iterates over `(id, pattern)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PatternId, &LabeledGraph)> {
        self.patterns.iter().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidermine_graph::label::Label;

    fn path(labels: &[u32]) -> LabeledGraph {
        let labels: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        let edges: Vec<(u32, u32)> = (0..labels.len() as u32 - 1).map(|i| (i, i + 1)).collect();
        LabeledGraph::from_parts(&labels, &edges)
    }

    #[test]
    fn duplicate_insertion_returns_same_id() {
        let mut idx = PatternIndex::new();
        let (a, new_a) = idx.insert(path(&[1, 2, 3]));
        let (b, new_b) = idx.insert(path(&[3, 2, 1])); // isomorphic, reversed
        assert!(new_a);
        assert!(!new_b);
        assert_eq!(a, b);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn distinct_patterns_get_distinct_ids() {
        let mut idx = PatternIndex::new();
        let (a, _) = idx.insert(path(&[1, 2, 3]));
        let (b, _) = idx.insert(path(&[1, 2, 4]));
        assert_ne!(a, b);
        assert_eq!(idx.len(), 2);
        assert!(!idx.is_empty());
    }

    #[test]
    fn contains_does_not_insert() {
        let mut idx = PatternIndex::new();
        assert!(!idx.contains(&path(&[1, 2])));
        idx.insert(path(&[1, 2]));
        assert!(idx.contains(&path(&[2, 1])));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn signature_buckets_avoid_iso_tests_for_different_shapes() {
        let mut idx = PatternIndex::new();
        idx.insert(path(&[1, 2, 3]));
        idx.insert(path(&[4, 5]));
        idx.insert(path(&[9, 9, 9, 9]));
        // All signatures differ, so no isomorphism tests were needed.
        assert_eq!(idx.iso_tests_run(), 0);
    }

    #[test]
    fn get_and_iter_expose_representatives() {
        let mut idx = PatternIndex::new();
        let (id, _) = idx.insert(path(&[1, 2]));
        assert_eq!(idx.get(id).vertex_count(), 2);
        assert_eq!(idx.iter().count(), 1);
    }
}
