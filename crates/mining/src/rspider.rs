//! General r-spider enumeration (tree-shaped, BFS-bounded growth).
//!
//! The main SpiderMine pipeline uses the fast r = 1 star miner in
//! [`crate::spider`]. This module implements the general case needed for the
//! paper's radius sweep (Appendix C.1(3), "Varied r"): it enumerates frequent
//! *rooted labeled trees* of depth at most `r`, which are exactly the
//! tree-shaped r-spiders. Support is the number of head (root) occurrences.
//!
//! Enumeration is level-wise: a frontier tree is extended by attaching one new
//! leaf to any node of depth `< r`, and the resulting tree is kept when its
//! head-occurrence support stays above the threshold. Rooted trees are
//! deduplicated by their canonical string (recursively sorted child codes),
//! which is a complete invariant for rooted labeled trees.
//!
//! The cost grows steeply with `r` — that is precisely the effect the paper's
//! appendix measures (610 ms at r = 1 to out-of-memory at r = 4 on a 600-edge
//! graph) and what `experiments/appx_r_sweep` reproduces.

use rustc_hash::{FxHashMap, FxHashSet};
use spidermine_graph::graph::{LabeledGraph, VertexId};
use spidermine_graph::label::Label;

/// A node of a rooted spider tree.
#[derive(Clone, Debug, PartialEq, Eq)]
struct TreeNode {
    label: Label,
    parent: Option<usize>,
    depth: u32,
}

/// A rooted, labeled tree of depth ≤ r, representing a tree-shaped r-spider.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpiderTree {
    nodes: Vec<TreeNode>,
}

impl SpiderTree {
    /// A single-node tree with the given root label.
    pub fn root(label: Label) -> Self {
        Self {
            nodes: vec![TreeNode {
                label,
                parent: None,
                depth: 0,
            }],
        }
    }

    /// Label of the root (head) vertex.
    pub fn root_label(&self) -> Label {
        self.nodes[0].label
    }

    /// Number of nodes.
    pub fn vertex_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges (`vertex_count - 1`).
    pub fn size(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Depth (maximum node depth), i.e. the radius of the spider.
    pub fn depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Extends the tree by attaching a new leaf labeled `label` to `parent`.
    pub fn extend(&self, parent: usize, label: Label) -> Self {
        let mut next = self.clone();
        let depth = self.nodes[parent].depth + 1;
        next.nodes.push(TreeNode {
            label,
            parent: Some(parent),
            depth,
        });
        next
    }

    /// Children of node `i`.
    fn children(&self, i: usize) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.parent == Some(i))
            .map(|(j, _)| j)
            .collect()
    }

    /// Canonical string of the rooted labeled tree: `label(children codes sorted)`.
    pub fn canonical_code(&self) -> String {
        self.code_of(0)
    }

    fn code_of(&self, i: usize) -> String {
        let mut child_codes: Vec<String> = self
            .children(i)
            .into_iter()
            .map(|c| self.code_of(c))
            .collect();
        child_codes.sort();
        format!("{}({})", self.nodes[i].label.0, child_codes.join(","))
    }

    /// Converts the tree into a standalone pattern graph (node 0 = head).
    pub fn to_pattern(&self) -> LabeledGraph {
        let mut g = LabeledGraph::with_capacity(self.nodes.len());
        for n in &self.nodes {
            g.add_vertex(n.label);
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if let Some(p) = n.parent {
                g.add_edge(VertexId(p as u32), VertexId(i as u32));
            }
        }
        g
    }

    /// True if the tree can be embedded in `graph` with its root at `v`
    /// (injective, label-preserving, parent-child edges mapped to graph edges).
    pub fn embeds_at(&self, graph: &LabeledGraph, v: VertexId) -> bool {
        if graph.label(v) != self.root_label() {
            return false;
        }
        let mut assignment: Vec<Option<VertexId>> = vec![None; self.nodes.len()];
        assignment[0] = Some(v);
        let mut used: FxHashSet<VertexId> = FxHashSet::default();
        used.insert(v);
        self.assign(graph, 1, &mut assignment, &mut used)
    }

    fn assign(
        &self,
        graph: &LabeledGraph,
        node: usize,
        assignment: &mut Vec<Option<VertexId>>,
        used: &mut FxHashSet<VertexId>,
    ) -> bool {
        if node == self.nodes.len() {
            return true;
        }
        let parent = self.nodes[node].parent.expect("non-root node has parent");
        let parent_vertex = assignment[parent].expect("parents assigned before children");
        let want = self.nodes[node].label;
        for &candidate in graph.neighbors(parent_vertex) {
            if used.contains(&candidate) || graph.label(candidate) != want {
                continue;
            }
            assignment[node] = Some(candidate);
            used.insert(candidate);
            if self.assign(graph, node + 1, assignment, used) {
                return true;
            }
            assignment[node] = None;
            used.remove(&candidate);
        }
        false
    }
}

/// Result of mining all tree-shaped r-spiders.
#[derive(Debug, Default)]
pub struct RSpiderMiningResult {
    /// The frequent spider trees, with their supporting head vertices.
    pub spiders: Vec<(SpiderTree, Vec<VertexId>)>,
    /// Number of candidate trees whose support was evaluated (work measure).
    pub candidates_evaluated: usize,
}

/// Mines all frequent tree-shaped r-spiders with head-occurrence support at
/// least `support_threshold`, up to `max_vertices` nodes per tree.
pub fn mine_r_spiders(
    graph: &LabeledGraph,
    r: u32,
    support_threshold: usize,
    max_vertices: usize,
) -> RSpiderMiningResult {
    let sigma = support_threshold.max(1);
    let mut result = RSpiderMiningResult::default();
    // Roots: frequent labels.
    let mut heads_by_label: FxHashMap<Label, Vec<VertexId>> = FxHashMap::default();
    for v in graph.vertices() {
        heads_by_label.entry(graph.label(v)).or_default().push(v);
    }
    let mut frontier: Vec<(SpiderTree, Vec<VertexId>)> = Vec::new();
    let mut labels: Vec<&Label> = heads_by_label.keys().collect();
    labels.sort();
    for &label in labels {
        let heads = &heads_by_label[&label];
        if heads.len() >= sigma {
            frontier.push((SpiderTree::root(label), heads.clone()));
        }
    }
    let mut seen: FxHashSet<String> = frontier.iter().map(|(t, _)| t.canonical_code()).collect();
    // All labels appearing in the graph, candidates for new leaves.
    let mut all_labels: Vec<Label> = heads_by_label.keys().copied().collect();
    all_labels.sort();

    while let Some((tree, heads)) = frontier.pop() {
        result.spiders.push((tree.clone(), heads.clone()));
        if tree.vertex_count() >= max_vertices {
            continue;
        }
        for parent in 0..tree.vertex_count() {
            if tree.nodes[parent].depth >= r {
                continue;
            }
            for &label in &all_labels {
                let candidate = tree.extend(parent, label);
                let code = candidate.canonical_code();
                if seen.contains(&code) {
                    continue;
                }
                result.candidates_evaluated += 1;
                let surviving: Vec<VertexId> = heads
                    .iter()
                    .copied()
                    .filter(|&h| candidate.embeds_at(graph, h))
                    .collect();
                if surviving.len() >= sigma {
                    seen.insert(code);
                    frontier.push((candidate, surviving));
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two copies of a depth-2 "caterpillar": 0 - 1 - 2 (labels 0, 1, 2).
    fn two_paths() -> LabeledGraph {
        LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(2), Label(0), Label(1), Label(2)],
            &[(0, 1), (1, 2), (3, 4), (4, 5)],
        )
    }

    #[test]
    fn radius_one_matches_star_semantics() {
        let g = two_paths();
        let result = mine_r_spiders(&g, 1, 2, 8);
        // Depth-1 trees only.
        assert!(result.spiders.iter().all(|(t, _)| t.depth() <= 1));
        // The tree 0-1 (root label 0, child label 1) is frequent with heads {v0, v3}.
        let found = result
            .spiders
            .iter()
            .find(|(t, _)| t.vertex_count() == 2 && t.root_label() == Label(0))
            .expect("0-1 spider");
        assert_eq!(found.1.len(), 2);
    }

    #[test]
    fn radius_two_reaches_the_far_vertex() {
        let g = two_paths();
        let result = mine_r_spiders(&g, 2, 2, 8);
        // Root label 0, depth-2 path 0-1-2 must be frequent.
        let deep = result
            .spiders
            .iter()
            .find(|(t, _)| t.root_label() == Label(0) && t.vertex_count() == 3 && t.depth() == 2);
        assert!(deep.is_some(), "depth-2 spider not found");
        // And it is absent at r=1.
        let r1 = mine_r_spiders(&g, 1, 2, 8);
        assert!(!r1
            .spiders
            .iter()
            .any(|(t, _)| t.root_label() == Label(0) && t.vertex_count() == 3));
    }

    #[test]
    fn support_threshold_filters_trees() {
        let g = two_paths();
        let strict = mine_r_spiders(&g, 2, 3, 8);
        // Every label appears only twice, so only... nothing survives sigma=3.
        assert!(strict.spiders.is_empty());
    }

    #[test]
    fn canonical_code_is_order_invariant() {
        let t1 = SpiderTree::root(Label(0))
            .extend(0, Label(1))
            .extend(0, Label(2));
        let t2 = SpiderTree::root(Label(0))
            .extend(0, Label(2))
            .extend(0, Label(1));
        assert_eq!(t1.canonical_code(), t2.canonical_code());
        let t3 = SpiderTree::root(Label(0))
            .extend(0, Label(1))
            .extend(1, Label(2));
        assert_ne!(t1.canonical_code(), t3.canonical_code());
    }

    #[test]
    fn embeds_at_requires_injectivity() {
        // Star with two label-1 leaves vs a host with only one label-1 neighbor.
        let host = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let tree = SpiderTree::root(Label(0))
            .extend(0, Label(1))
            .extend(0, Label(1));
        assert!(!tree.embeds_at(&host, VertexId(0)));
        let bigger = LabeledGraph::from_parts(&[Label(0), Label(1), Label(1)], &[(0, 1), (0, 2)]);
        assert!(tree.embeds_at(&bigger, VertexId(0)));
    }

    #[test]
    fn to_pattern_has_tree_shape() {
        let tree = SpiderTree::root(Label(5))
            .extend(0, Label(6))
            .extend(1, Label(7));
        let p = tree.to_pattern();
        assert_eq!(p.vertex_count(), 3);
        assert_eq!(p.edge_count(), 2);
        assert_eq!(p.label(VertexId(0)), Label(5));
    }

    #[test]
    fn work_grows_with_radius() {
        let g = two_paths();
        let r1 = mine_r_spiders(&g, 1, 2, 8);
        let r2 = mine_r_spiders(&g, 2, 2, 8);
        assert!(r2.spiders.len() >= r1.spiders.len());
        assert!(r2.candidates_evaluated >= r1.candidates_evaluated);
    }
}
