//! Frequent-subgraph mining substrate shared by SpiderMine and the baselines.
//!
//! * [`embedding`] — embeddings of a pattern into a host graph and the
//!   [`embedding::EmbeddedPattern`] bundle (pattern + its embedding list) that
//!   every miner in the workspace grows and prunes.
//! * [`support`] — pluggable single-graph support measures: raw embedding
//!   count, minimum node image (MNI), and a greedy maximum-independent-set
//!   overlap-aware measure standing in for the paper's harmful-overlap support.
//! * [`pattern_index`] — isomorphism-aware pattern deduplication (invariant
//!   signature buckets + VF2 confirmation).
//! * [`spider`] — Stage I of SpiderMine for r = 1: mining all frequent
//!   star-shaped 1-spiders with their head-vertex occurrence lists.
//! * [`rspider`] — the general r-spider enumerator (tree-shaped, BFS-bounded
//!   growth) used for the radius sweep of the paper's appendix.
//! * [`extension`] — generic one-edge pattern growth with embedding
//!   maintenance, the workhorse of the MoSS/gSpan-style and SUBDUE baselines.
//! * [`context`] — the execution context of the unified engine API:
//!   cooperative cancellation, progress callbacks, streaming pattern delivery
//!   and per-stage timings, threaded through every miner's `*_with` entry
//!   point.
//! * [`eval`] — the incremental embedding-evaluation layer: the columnar
//!   [`eval::EmbeddingStore`] arena (flat `VertexId` pool,
//!   [`eval::EmbeddingSetId`] handles), the memoizing
//!   [`eval::SupportOracle`], and the shared [`eval::VertexBitset`].

pub mod context;
pub mod embedding;
pub mod eval;
pub mod extension;
pub mod pattern_index;
pub mod rspider;
pub mod spider;
pub mod support;

pub use context::{CancelToken, MineContext, ProgressEvent, StageTiming, StreamedPattern};
pub use embedding::{EmbeddedPattern, Embedding};
pub use eval::{
    DirectOracle, EmbeddingSetId, EmbeddingSetView, EmbeddingStore, FlatEmbeddings, MemoOracle,
    OracleStats, PatternMemo, SupportOracle, VertexBitset,
};
pub use pattern_index::PatternIndex;
pub use spider::{Spider, SpiderCatalog, SpiderId, SpiderMiningConfig};
pub use support::SupportMeasure;
