//! Single-graph support measures.
//!
//! The single-graph setting makes support subtle: embeddings overlap, and a
//! naive embedding count is not anti-monotone. The paper adopts the
//! Fiedler–Borgelt "harmful overlap" definition; exact harmful-overlap support
//! (like exact edge-disjoint support) requires a maximum-independent-set
//! computation, which is NP-hard, so practical systems approximate it. We
//! provide three measures behind one enum:
//!
//! * [`SupportMeasure::EmbeddingCount`] — raw number of (deduplicated)
//!   embeddings; what the paper's synthetic experiments report (`Lsup`,
//!   `Ssup` are numbers of injected embeddings).
//! * [`SupportMeasure::MinimumImage`] — MNI: the minimum, over pattern
//!   vertices, of the number of distinct host vertices that vertex maps to.
//!   Anti-monotone, cheap, and the standard choice in later literature.
//! * [`SupportMeasure::GreedyDisjoint`] — greedy maximum independent set over
//!   the embedding-overlap graph (two embeddings conflict when they share a
//!   host vertex); a conservative overlap-aware count in the spirit of
//!   harmful-overlap / edge-disjoint support.
//!
//! Each measure has one row-iterator core that both storage layouts reach:
//! the legacy `&[Embedding]` entry points and the flat row-major slices of
//! the [`EmbeddingStore`](crate::eval::EmbeddingStore) arena
//! ([`SupportMeasure::compute_flat`]). Distinct-vertex counting goes through
//! the shared [`VertexBitset`].

use crate::embedding::Embedding;
use crate::eval::bitset::{distinct_vertex_set_indices, VertexBitset};
use spidermine_graph::graph::VertexId;
use std::fmt;
use std::str::FromStr;

/// Which support definition to use when counting pattern frequency.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SupportMeasure {
    /// Number of distinct embeddings (distinct host-vertex sets).
    EmbeddingCount,
    /// Minimum node image support (MNI).
    #[default]
    MinimumImage,
    /// Greedy vertex-disjoint embedding count.
    GreedyDisjoint,
}

impl SupportMeasure {
    /// Stable lower-case name (also accepted by [`SupportMeasure::from_str`]).
    pub fn name(&self) -> &'static str {
        match self {
            SupportMeasure::EmbeddingCount => "embeddings",
            SupportMeasure::MinimumImage => "mni",
            SupportMeasure::GreedyDisjoint => "greedy-disjoint",
        }
    }

    /// All measures, in a stable order.
    pub fn all() -> [SupportMeasure; 3] {
        [
            SupportMeasure::EmbeddingCount,
            SupportMeasure::MinimumImage,
            SupportMeasure::GreedyDisjoint,
        ]
    }

    /// Computes the support of a pattern with `pattern_vertices` vertices from
    /// its embedding list.
    pub fn compute(self, pattern_vertices: usize, embeddings: &[Embedding]) -> usize {
        self.compute_rows(
            pattern_vertices,
            embeddings.iter().map(Vec::as_slice),
            embeddings.len(),
        )
    }

    /// [`SupportMeasure::compute`] over the flat row-major storage of the
    /// embedding arena (`arity` host vertices per row).
    pub fn compute_flat(self, arity: usize, flat: &[VertexId]) -> usize {
        if arity == 0 {
            return 0;
        }
        self.compute_rows(arity, flat.chunks_exact(arity), flat.len() / arity)
    }

    /// The row-iterator core every storage layout reaches. `rows` must yield
    /// `row_count` slices of length `arity` (re-iterated once per pattern
    /// position for MNI, hence `Clone`).
    pub fn compute_rows<'a, I>(self, arity: usize, rows: I, row_count: usize) -> usize
    where
        I: Iterator<Item = &'a [VertexId]> + Clone,
    {
        match self {
            SupportMeasure::EmbeddingCount => distinct_embedding_count_rows(rows),
            SupportMeasure::MinimumImage => minimum_image_support_rows(arity, rows, row_count),
            SupportMeasure::GreedyDisjoint => greedy_disjoint_support_rows(rows),
        }
    }
}

impl fmt::Display for SupportMeasure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SupportMeasure {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "embeddings" | "embedding-count" | "count" => Ok(SupportMeasure::EmbeddingCount),
            "mni" | "minimum-image" => Ok(SupportMeasure::MinimumImage),
            "greedy-disjoint" | "disjoint" => Ok(SupportMeasure::GreedyDisjoint),
            other => Err(format!(
                "unknown support measure `{other}` (expected one of {})",
                SupportMeasure::all().map(|m| m.name()).join(", ")
            )),
        }
    }
}

/// Largest host-vertex id referenced by any row (0 when empty).
fn max_vertex_id<'a>(rows: impl Iterator<Item = &'a [VertexId]>) -> u32 {
    rows.flat_map(|r| r.iter()).map(|v| v.0).max().unwrap_or(0)
}

/// Number of embeddings with distinct host-vertex sets (automorphic
/// re-mappings of the same occurrence count once).
pub fn distinct_embedding_count(embeddings: &[Embedding]) -> usize {
    distinct_embedding_count_rows(embeddings.iter().map(Vec::as_slice))
}

/// Row-iterator core of [`distinct_embedding_count`].
pub fn distinct_embedding_count_rows<'a, I>(rows: I) -> usize
where
    I: Iterator<Item = &'a [VertexId]>,
{
    distinct_vertex_set_indices(rows).len()
}

/// Column-matrix size cap for the word-parallel MNI kernel, in `u64` words
/// (32 MiB). Patterns × host ranges past this fall back to the one-column
/// reference, whose scratch peaks at a single column.
const MNI_COLUMN_WORDS_CAP: usize = (32 << 20) / 8;

/// Minimum node image support: `min_p |{ e[p] : e ∈ embeddings }|`.
///
/// Word-parallel: one streaming pass over the rows ORs every position's
/// image into its own bit column (`arity × words` matrix), then a popcount
/// sweep per column takes the minimum. Compared to the retained
/// [reference](minimum_image_support_rows_reference), this reads each row's
/// cache lines once instead of `arity` times and replaces the per-vertex
/// seen-before branch with an unconditional OR.
pub fn minimum_image_support(pattern_vertices: usize, embeddings: &[Embedding]) -> usize {
    minimum_image_support_rows(
        pattern_vertices,
        embeddings.iter().map(Vec::as_slice),
        embeddings.len(),
    )
}

/// Row-iterator core of [`minimum_image_support`] (single pass over `rows`).
pub fn minimum_image_support_rows<'a, I>(
    pattern_vertices: usize,
    rows: I,
    row_count: usize,
) -> usize
where
    I: Iterator<Item = &'a [VertexId]> + Clone,
{
    if pattern_vertices == 0 || row_count == 0 {
        return 0;
    }
    // The column matrix grows on demand (amortized doubling, re-striding the
    // columns already filled) instead of pre-scanning the rows for the
    // maximum id — on memory-bound row sets that scan would cost a full
    // extra streaming pass, a sixth of the reference's whole runtime.
    let mut words_per = 64usize;
    let mut cols = vec![0u64; pattern_vertices * words_per];
    for row in rows.clone() {
        let mut base = 0usize;
        for (p, &v) in row[..pattern_vertices].iter().enumerate() {
            let v = v.0 as usize;
            let w = v >> 6;
            if w >= words_per {
                let new_words_per = (w + 1).next_power_of_two();
                if pattern_vertices.saturating_mul(new_words_per) > MNI_COLUMN_WORDS_CAP {
                    return minimum_image_support_rows_reference(pattern_vertices, rows, row_count);
                }
                let mut grown = vec![0u64; pattern_vertices * new_words_per];
                for (old, new) in cols
                    .chunks_exact(words_per)
                    .zip(grown.chunks_exact_mut(new_words_per))
                {
                    new[..words_per].copy_from_slice(old);
                }
                cols = grown;
                words_per = new_words_per;
                base = p * words_per;
            }
            // SAFETY: `base` is `p * words_per` for `p < pattern_vertices`
            // (the slice above caps the inner loop) and the branch above
            // guarantees `w < words_per`, so the sum is `< cols.len()`.
            unsafe { *cols.get_unchecked_mut(base + w) |= 1u64 << (v & 63) };
            base += words_per;
        }
    }
    let mut min = usize::MAX;
    for col in cols.chunks_exact(words_per) {
        min = min.min(crate::eval::bitset::popcount_words(col));
        if min <= 1 {
            // 1 is the floor for a non-empty embedding list; stop early.
            break;
        }
    }
    min
}

/// The pre-kernel MNI implementation: one reused [`VertexBitset`], one pass
/// over the rows *per pattern position*, a seen-before branch per vertex.
/// Retained as the equivalence oracle for the word-parallel kernel (property
/// tests) and as the scalar baseline the kernel bench measures against; also
/// the fallback when the column matrix would exceed the memory cap.
pub fn minimum_image_support_rows_reference<'a, I>(
    pattern_vertices: usize,
    rows: I,
    row_count: usize,
) -> usize
where
    I: Iterator<Item = &'a [VertexId]> + Clone,
{
    if pattern_vertices == 0 || row_count == 0 {
        return 0;
    }
    let mut bits = VertexBitset::with_capacity(max_vertex_id(rows.clone()));
    let mut min = usize::MAX;
    for p in 0..pattern_vertices {
        bits.clear();
        let mut distinct = 0;
        for row in rows.clone() {
            if bits.insert(row[p]) {
                distinct += 1;
            }
        }
        min = min.min(distinct);
        if min <= 1 {
            break;
        }
    }
    min
}

/// Greedily selects pairwise vertex-disjoint embeddings and returns how many
/// were selected. This lower-bounds the maximum independent set.
pub fn greedy_disjoint_support(embeddings: &[Embedding]) -> usize {
    greedy_disjoint_support_rows(embeddings.iter().map(Vec::as_slice))
}

/// Row-iterator core of [`greedy_disjoint_support`]: whole-row
/// [`contains_any`](VertexBitset::contains_any) probe, whole-row
/// [`insert_all`](VertexBitset::insert_all) mark — no per-vertex was-it-new
/// branch, and no pre-scan for the maximum id (the bitset grows on the
/// marking path; unmarked out-of-range probes answer `false` for free).
pub fn greedy_disjoint_support_rows<'a, I>(rows: I) -> usize
where
    I: Iterator<Item = &'a [VertexId]>,
{
    let mut used = VertexBitset::default();
    let mut count = 0;
    for row in rows {
        if used.contains_any(row) {
            continue;
        }
        used.insert_all(row);
        count += 1;
    }
    count
}

/// The pre-kernel greedy-disjoint implementation (per-vertex `contains` and
/// `insert` loops). Retained as the property-test oracle and bench baseline
/// for [`greedy_disjoint_support_rows`].
pub fn greedy_disjoint_support_rows_reference<'a, I>(rows: I) -> usize
where
    I: Iterator<Item = &'a [VertexId]> + Clone,
{
    let mut peek = rows.clone();
    if peek.next().is_none() {
        return 0;
    }
    let mut used = VertexBitset::with_capacity(max_vertex_id(rows.clone()));
    let mut count = 0;
    for row in rows {
        if row.iter().any(|&v| used.contains(v)) {
            continue;
        }
        for &v in row {
            used.insert(v);
        }
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(ids: &[u32]) -> Embedding {
        ids.iter().map(|&i| VertexId(i)).collect()
    }

    #[test]
    fn embedding_count_dedups_vertex_sets() {
        let embs = vec![v(&[0, 1]), v(&[1, 0]), v(&[2, 3])];
        assert_eq!(distinct_embedding_count(&embs), 2);
        assert_eq!(SupportMeasure::EmbeddingCount.compute(2, &embs), 2);
    }

    #[test]
    fn mni_is_min_over_positions() {
        // position 0 images: {0, 2, 4}; position 1 images: {1, 1, 1} -> 1
        let embs = vec![v(&[0, 1]), v(&[2, 1]), v(&[4, 1])];
        assert_eq!(minimum_image_support(2, &embs), 1);
        assert_eq!(SupportMeasure::MinimumImage.compute(2, &embs), 1);
    }

    #[test]
    fn mni_of_disjoint_embeddings_equals_count() {
        let embs = vec![v(&[0, 1]), v(&[2, 3]), v(&[4, 5])];
        assert_eq!(minimum_image_support(2, &embs), 3);
    }

    #[test]
    fn greedy_disjoint_respects_overlap() {
        let embs = vec![v(&[0, 1]), v(&[1, 2]), v(&[3, 4])];
        assert_eq!(greedy_disjoint_support(&embs), 2);
        assert_eq!(SupportMeasure::GreedyDisjoint.compute(2, &embs), 2);
    }

    #[test]
    fn empty_inputs_have_zero_support() {
        for m in SupportMeasure::all() {
            assert_eq!(m.compute(2, &[]), 0);
            assert_eq!(m.compute_flat(2, &[]), 0);
            assert_eq!(m.compute_flat(0, &[]), 0);
        }
        assert_eq!(minimum_image_support(0, &[v(&[])]), 0);
    }

    #[test]
    fn flat_layout_agrees_with_owned_rows() {
        let embs = vec![v(&[0, 1]), v(&[1, 2]), v(&[2, 3]), v(&[5, 6]), v(&[6, 5])];
        let flat: Vec<VertexId> = embs.iter().flat_map(|e| e.iter().copied()).collect();
        for m in SupportMeasure::all() {
            assert_eq!(m.compute(2, &embs), m.compute_flat(2, &flat), "{m}");
        }
    }

    #[test]
    fn measures_are_ordered_as_expected() {
        // disjoint <= MNI <= embedding count on any input
        let embs = vec![v(&[0, 1]), v(&[1, 2]), v(&[2, 3]), v(&[5, 6])];
        let d = greedy_disjoint_support(&embs);
        let m = minimum_image_support(2, &embs);
        let c = distinct_embedding_count(&embs);
        assert!(d <= m && m <= c, "{d} <= {m} <= {c}");
    }

    #[test]
    fn kernels_agree_with_reference_implementations() {
        // Pseudo-random embedding set with heavy image overlap: exercises
        // multi-word columns, duplicate vertices, and the greedy skip path.
        let arity = 4usize;
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        let embs: Vec<Embedding> = (0..300)
            .map(|_| {
                (0..arity)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        VertexId((x % 700) as u32)
                    })
                    .collect()
            })
            .collect();
        let rows = || embs.iter().map(Vec::as_slice);
        assert_eq!(
            minimum_image_support_rows(arity, rows(), embs.len()),
            minimum_image_support_rows_reference(arity, rows(), embs.len()),
        );
        assert_eq!(
            greedy_disjoint_support_rows(rows()),
            greedy_disjoint_support_rows_reference(rows()),
        );
    }

    #[test]
    fn names_round_trip_and_reject_unknown() {
        for m in SupportMeasure::all() {
            assert_eq!(m.name().parse::<SupportMeasure>().unwrap(), m);
            assert_eq!(format!("{m}"), m.name());
        }
        assert_eq!(
            "minimum-image".parse::<SupportMeasure>().unwrap(),
            SupportMeasure::MinimumImage
        );
        assert!("frobnicate".parse::<SupportMeasure>().is_err());
    }
}
