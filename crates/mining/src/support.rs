//! Single-graph support measures.
//!
//! The single-graph setting makes support subtle: embeddings overlap, and a
//! naive embedding count is not anti-monotone. The paper adopts the
//! Fiedler–Borgelt "harmful overlap" definition; exact harmful-overlap support
//! (like exact edge-disjoint support) requires a maximum-independent-set
//! computation, which is NP-hard, so practical systems approximate it. We
//! provide three measures behind one enum:
//!
//! * [`SupportMeasure::EmbeddingCount`] — raw number of (deduplicated)
//!   embeddings; what the paper's synthetic experiments report (`Lsup`,
//!   `Ssup` are numbers of injected embeddings).
//! * [`SupportMeasure::MinimumImage`] — MNI: the minimum, over pattern
//!   vertices, of the number of distinct host vertices that vertex maps to.
//!   Anti-monotone, cheap, and the standard choice in later literature.
//! * [`SupportMeasure::GreedyDisjoint`] — greedy maximum independent set over
//!   the embedding-overlap graph (two embeddings conflict when they share a
//!   host vertex); a conservative overlap-aware count in the spirit of
//!   harmful-overlap / edge-disjoint support.

use crate::embedding::Embedding;
use rustc_hash::FxHashSet;
use spidermine_graph::graph::VertexId;

/// Which support definition to use when counting pattern frequency.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SupportMeasure {
    /// Number of distinct embeddings (distinct host-vertex sets).
    EmbeddingCount,
    /// Minimum node image support (MNI).
    #[default]
    MinimumImage,
    /// Greedy vertex-disjoint embedding count.
    GreedyDisjoint,
}

impl SupportMeasure {
    /// Computes the support of a pattern with `pattern_vertices` vertices from
    /// its embedding list.
    pub fn compute(self, pattern_vertices: usize, embeddings: &[Embedding]) -> usize {
        match self {
            SupportMeasure::EmbeddingCount => distinct_embedding_count(embeddings),
            SupportMeasure::MinimumImage => minimum_image_support(pattern_vertices, embeddings),
            SupportMeasure::GreedyDisjoint => greedy_disjoint_support(embeddings),
        }
    }
}

/// Number of embeddings with distinct host-vertex sets (automorphic
/// re-mappings of the same occurrence count once).
pub fn distinct_embedding_count(embeddings: &[Embedding]) -> usize {
    let mut seen: FxHashSet<Vec<VertexId>> = FxHashSet::default();
    for e in embeddings {
        let mut key = e.clone();
        key.sort_unstable();
        seen.insert(key);
    }
    seen.len()
}

/// Minimum node image support: `min_p |{ e[p] : e ∈ embeddings }|`.
pub fn minimum_image_support(pattern_vertices: usize, embeddings: &[Embedding]) -> usize {
    if pattern_vertices == 0 || embeddings.is_empty() {
        return 0;
    }
    (0..pattern_vertices)
        .map(|p| {
            embeddings
                .iter()
                .map(|e| e[p])
                .collect::<FxHashSet<_>>()
                .len()
        })
        .min()
        .unwrap_or(0)
}

/// Greedily selects pairwise vertex-disjoint embeddings and returns how many
/// were selected. This lower-bounds the maximum independent set.
pub fn greedy_disjoint_support(embeddings: &[Embedding]) -> usize {
    let mut used: FxHashSet<VertexId> = FxHashSet::default();
    let mut count = 0;
    for e in embeddings {
        if e.iter().any(|v| used.contains(v)) {
            continue;
        }
        used.extend(e.iter().copied());
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(ids: &[u32]) -> Embedding {
        ids.iter().map(|&i| VertexId(i)).collect()
    }

    #[test]
    fn embedding_count_dedups_vertex_sets() {
        let embs = vec![v(&[0, 1]), v(&[1, 0]), v(&[2, 3])];
        assert_eq!(distinct_embedding_count(&embs), 2);
        assert_eq!(SupportMeasure::EmbeddingCount.compute(2, &embs), 2);
    }

    #[test]
    fn mni_is_min_over_positions() {
        // position 0 images: {0, 2, 4}; position 1 images: {1, 1, 1} -> 1
        let embs = vec![v(&[0, 1]), v(&[2, 1]), v(&[4, 1])];
        assert_eq!(minimum_image_support(2, &embs), 1);
        assert_eq!(SupportMeasure::MinimumImage.compute(2, &embs), 1);
    }

    #[test]
    fn mni_of_disjoint_embeddings_equals_count() {
        let embs = vec![v(&[0, 1]), v(&[2, 3]), v(&[4, 5])];
        assert_eq!(minimum_image_support(2, &embs), 3);
    }

    #[test]
    fn greedy_disjoint_respects_overlap() {
        let embs = vec![v(&[0, 1]), v(&[1, 2]), v(&[3, 4])];
        assert_eq!(greedy_disjoint_support(&embs), 2);
        assert_eq!(SupportMeasure::GreedyDisjoint.compute(2, &embs), 2);
    }

    #[test]
    fn empty_inputs_have_zero_support() {
        for m in [
            SupportMeasure::EmbeddingCount,
            SupportMeasure::MinimumImage,
            SupportMeasure::GreedyDisjoint,
        ] {
            assert_eq!(m.compute(2, &[]), 0);
        }
        assert_eq!(minimum_image_support(0, &[v(&[])]), 0);
    }

    #[test]
    fn measures_are_ordered_as_expected() {
        // disjoint <= MNI <= embedding count on any input
        let embs = vec![v(&[0, 1]), v(&[1, 2]), v(&[2, 3]), v(&[5, 6])];
        let d = greedy_disjoint_support(&embs);
        let m = minimum_image_support(2, &embs);
        let c = distinct_embedding_count(&embs);
        assert!(d <= m && m <= c, "{d} <= {m} <= {c}");
    }
}
