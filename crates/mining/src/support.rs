//! Single-graph support measures.
//!
//! The single-graph setting makes support subtle: embeddings overlap, and a
//! naive embedding count is not anti-monotone. The paper adopts the
//! Fiedler–Borgelt "harmful overlap" definition; exact harmful-overlap support
//! (like exact edge-disjoint support) requires a maximum-independent-set
//! computation, which is NP-hard, so practical systems approximate it. We
//! provide three measures behind one enum:
//!
//! * [`SupportMeasure::EmbeddingCount`] — raw number of (deduplicated)
//!   embeddings; what the paper's synthetic experiments report (`Lsup`,
//!   `Ssup` are numbers of injected embeddings).
//! * [`SupportMeasure::MinimumImage`] — MNI: the minimum, over pattern
//!   vertices, of the number of distinct host vertices that vertex maps to.
//!   Anti-monotone, cheap, and the standard choice in later literature.
//! * [`SupportMeasure::GreedyDisjoint`] — greedy maximum independent set over
//!   the embedding-overlap graph (two embeddings conflict when they share a
//!   host vertex); a conservative overlap-aware count in the spirit of
//!   harmful-overlap / edge-disjoint support.

use crate::embedding::Embedding;
use spidermine_graph::graph::VertexId;

/// Which support definition to use when counting pattern frequency.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SupportMeasure {
    /// Number of distinct embeddings (distinct host-vertex sets).
    EmbeddingCount,
    /// Minimum node image support (MNI).
    #[default]
    MinimumImage,
    /// Greedy vertex-disjoint embedding count.
    GreedyDisjoint,
}

impl SupportMeasure {
    /// Computes the support of a pattern with `pattern_vertices` vertices from
    /// its embedding list.
    pub fn compute(self, pattern_vertices: usize, embeddings: &[Embedding]) -> usize {
        match self {
            SupportMeasure::EmbeddingCount => distinct_embedding_count(embeddings),
            SupportMeasure::MinimumImage => minimum_image_support(pattern_vertices, embeddings),
            SupportMeasure::GreedyDisjoint => greedy_disjoint_support(embeddings),
        }
    }
}

/// A flat bitset over host-vertex ids, reused across positions/embeddings so
/// the support computations allocate once instead of building a hash set per
/// pattern position (the dominant cost of the previous implementation).
struct VertexBitset {
    words: Vec<u64>,
    /// Indices of words that have at least one bit set, for sparse clearing.
    touched: Vec<u32>,
}

impl VertexBitset {
    fn with_capacity(max_vertex_id: u32) -> Self {
        let words = vec![0u64; (max_vertex_id as usize + 64) / 64];
        Self {
            words,
            touched: Vec::new(),
        }
    }

    /// Sets the bit for `v`; returns `true` if it was previously clear.
    #[inline]
    fn insert(&mut self, v: VertexId) -> bool {
        let word = (v.0 / 64) as usize;
        let bit = 1u64 << (v.0 % 64);
        if self.words[word] & bit != 0 {
            return false;
        }
        if self.words[word] == 0 {
            self.touched.push(word as u32);
        }
        self.words[word] |= bit;
        true
    }

    /// True if the bit for `v` is set.
    #[inline]
    fn contains(&self, v: VertexId) -> bool {
        self.words[(v.0 / 64) as usize] & (1u64 << (v.0 % 64)) != 0
    }

    /// Clears only the words that were touched since the last clear.
    fn clear(&mut self) {
        for &w in &self.touched {
            self.words[w as usize] = 0;
        }
        self.touched.clear();
    }
}

/// Largest host-vertex id referenced by any embedding (0 when empty).
fn max_vertex_id(embeddings: &[Embedding]) -> u32 {
    embeddings
        .iter()
        .flat_map(|e| e.iter())
        .map(|v| v.0)
        .max()
        .unwrap_or(0)
}

/// Number of embeddings with distinct host-vertex sets (automorphic
/// re-mappings of the same occurrence count once).
pub fn distinct_embedding_count(embeddings: &[Embedding]) -> usize {
    if embeddings.is_empty() {
        return 0;
    }
    // Sort-and-dedup over the sorted vertex sets: one allocation per
    // embedding key plus one sort, instead of a hash set of vectors.
    let mut keys: Vec<Vec<VertexId>> = embeddings
        .iter()
        .map(|e| {
            let mut key = e.clone();
            key.sort_unstable();
            key
        })
        .collect();
    keys.sort_unstable();
    keys.dedup();
    keys.len()
}

/// Minimum node image support: `min_p |{ e[p] : e ∈ embeddings }|`.
///
/// Counts distinct images per pattern position through a single reused
/// `VertexBitset` — no per-position hash set.
pub fn minimum_image_support(pattern_vertices: usize, embeddings: &[Embedding]) -> usize {
    if pattern_vertices == 0 || embeddings.is_empty() {
        return 0;
    }
    let mut bits = VertexBitset::with_capacity(max_vertex_id(embeddings));
    let mut min = usize::MAX;
    for p in 0..pattern_vertices {
        bits.clear();
        let mut distinct = 0;
        for e in embeddings {
            if bits.insert(e[p]) {
                distinct += 1;
            }
        }
        min = min.min(distinct);
        if min <= 1 {
            // 1 is the floor for a non-empty embedding list; stop early.
            break;
        }
    }
    min
}

/// Greedily selects pairwise vertex-disjoint embeddings and returns how many
/// were selected. This lower-bounds the maximum independent set.
pub fn greedy_disjoint_support(embeddings: &[Embedding]) -> usize {
    if embeddings.is_empty() {
        return 0;
    }
    let mut used = VertexBitset::with_capacity(max_vertex_id(embeddings));
    let mut count = 0;
    for e in embeddings {
        if e.iter().any(|&v| used.contains(v)) {
            continue;
        }
        for &v in e {
            used.insert(v);
        }
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(ids: &[u32]) -> Embedding {
        ids.iter().map(|&i| VertexId(i)).collect()
    }

    #[test]
    fn embedding_count_dedups_vertex_sets() {
        let embs = vec![v(&[0, 1]), v(&[1, 0]), v(&[2, 3])];
        assert_eq!(distinct_embedding_count(&embs), 2);
        assert_eq!(SupportMeasure::EmbeddingCount.compute(2, &embs), 2);
    }

    #[test]
    fn mni_is_min_over_positions() {
        // position 0 images: {0, 2, 4}; position 1 images: {1, 1, 1} -> 1
        let embs = vec![v(&[0, 1]), v(&[2, 1]), v(&[4, 1])];
        assert_eq!(minimum_image_support(2, &embs), 1);
        assert_eq!(SupportMeasure::MinimumImage.compute(2, &embs), 1);
    }

    #[test]
    fn mni_of_disjoint_embeddings_equals_count() {
        let embs = vec![v(&[0, 1]), v(&[2, 3]), v(&[4, 5])];
        assert_eq!(minimum_image_support(2, &embs), 3);
    }

    #[test]
    fn greedy_disjoint_respects_overlap() {
        let embs = vec![v(&[0, 1]), v(&[1, 2]), v(&[3, 4])];
        assert_eq!(greedy_disjoint_support(&embs), 2);
        assert_eq!(SupportMeasure::GreedyDisjoint.compute(2, &embs), 2);
    }

    #[test]
    fn empty_inputs_have_zero_support() {
        for m in [
            SupportMeasure::EmbeddingCount,
            SupportMeasure::MinimumImage,
            SupportMeasure::GreedyDisjoint,
        ] {
            assert_eq!(m.compute(2, &[]), 0);
        }
        assert_eq!(minimum_image_support(0, &[v(&[])]), 0);
    }

    #[test]
    fn measures_are_ordered_as_expected() {
        // disjoint <= MNI <= embedding count on any input
        let embs = vec![v(&[0, 1]), v(&[1, 2]), v(&[2, 3]), v(&[5, 6])];
        let d = greedy_disjoint_support(&embs);
        let m = minimum_image_support(2, &embs);
        let c = distinct_embedding_count(&embs);
        assert!(d <= m && m <= c, "{d} <= {m} <= {c}");
    }
}
