//! Embeddings of patterns into a host graph.
//!
//! In the single-graph setting the support set of a pattern *is* its set of
//! embeddings (Section 3 of the paper), so every miner carries a pattern
//! around together with its embedding list — that bundle is
//! [`EmbeddedPattern`].

use rustc_hash::FxHashSet;
use spidermine_graph::graph::{LabeledGraph, VertexId};
use spidermine_graph::iso;

/// One embedding: `mapping[p]` is the host vertex matched to pattern vertex `p`.
pub type Embedding = Vec<VertexId>;

/// A pattern together with its embeddings in a fixed host graph.
#[derive(Clone, Debug)]
pub struct EmbeddedPattern {
    /// The pattern graph (vertices renumbered `0..k`).
    pub pattern: LabeledGraph,
    /// All known embeddings of `pattern` in the host graph.
    pub embeddings: Vec<Embedding>,
}

impl EmbeddedPattern {
    /// Creates a bundle from a pattern and its embeddings.
    pub fn new(pattern: LabeledGraph, embeddings: Vec<Embedding>) -> Self {
        Self {
            pattern,
            embeddings,
        }
    }

    /// Builds the bundle by searching for up to `limit` embeddings in `host`.
    pub fn discover(pattern: LabeledGraph, host: &LabeledGraph, limit: usize) -> Self {
        let embeddings = iso::find_embeddings(&pattern, host, limit);
        Self {
            pattern,
            embeddings,
        }
    }

    /// Number of pattern vertices.
    pub fn vertex_count(&self) -> usize {
        self.pattern.vertex_count()
    }

    /// Number of pattern edges (the paper's notion of pattern size).
    pub fn size(&self) -> usize {
        self.pattern.edge_count()
    }

    /// The set of host vertices covered by any embedding.
    pub fn covered_host_vertices(&self) -> FxHashSet<VertexId> {
        let mut set = FxHashSet::default();
        for e in &self.embeddings {
            set.extend(e.iter().copied());
        }
        set
    }

    /// True if some embedding of `self` and some embedding of `other` share at
    /// least one host vertex — the merge trigger of SpiderMine's Stage II.
    pub fn overlaps(&self, other: &EmbeddedPattern) -> bool {
        let mine = self.covered_host_vertices();
        other
            .embeddings
            .iter()
            .any(|e| e.iter().any(|v| mine.contains(v)))
    }

    /// All pairs `(i, j)` such that embedding `i` of `self` and embedding `j`
    /// of `other` share at least one host vertex.
    pub fn overlapping_embedding_pairs(&self, other: &EmbeddedPattern) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        let sets: Vec<FxHashSet<VertexId>> = self
            .embeddings
            .iter()
            .map(|e| e.iter().copied().collect())
            .collect();
        for (j, e2) in other.embeddings.iter().enumerate() {
            for (i, set) in sets.iter().enumerate() {
                if e2.iter().any(|v| set.contains(v)) {
                    pairs.push((i, j));
                }
            }
        }
        pairs
    }

    /// Deduplicates embeddings that map to the same host-vertex set (two
    /// automorphic placements cover the same occurrence). Shares its dedup
    /// core with [`support::distinct_embedding_count`](crate::support::distinct_embedding_count).
    pub fn dedup_by_vertex_set(&mut self) {
        let survivors = crate::eval::bitset::distinct_vertex_set_indices(
            self.embeddings.iter().map(Vec::as_slice),
        );
        if survivors.len() == self.embeddings.len() {
            return;
        }
        let mut keep = survivors.into_iter().peekable();
        let mut i = 0;
        self.embeddings.retain(|_| {
            let keep_this = keep.peek() == Some(&i);
            if keep_this {
                keep.next();
            }
            i += 1;
            keep_this
        });
    }

    /// Checks that every stored embedding really maps pattern edges onto host
    /// edges with matching labels. Used in tests and debug assertions.
    pub fn validate_against(&self, host: &LabeledGraph) -> bool {
        self.embeddings.iter().all(|e| {
            if e.len() != self.pattern.vertex_count() {
                return false;
            }
            let distinct: FxHashSet<_> = e.iter().collect();
            if distinct.len() != e.len() {
                return false;
            }
            let labels_ok = self
                .pattern
                .vertices()
                .all(|p| self.pattern.label(p) == host.label(e[p.index()]));
            let edges_ok = self
                .pattern
                .edges()
                .all(|(u, v)| host.has_edge(e[u.index()], e[v.index()]));
            labels_ok && edges_ok
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidermine_graph::label::Label;

    fn host() -> LabeledGraph {
        // Two disjoint label-0/label-1 edges plus a bridge 1-2. The bridge
        // edge (label 1 – label 0) is itself a third embedding of the
        // 0-1 edge pattern.
        LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(0), Label(1)],
            &[(0, 1), (2, 3), (1, 2)],
        )
    }

    fn edge_pattern() -> LabeledGraph {
        LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)])
    }

    #[test]
    fn discover_finds_all_embeddings() {
        let h = host();
        let ep = EmbeddedPattern::discover(edge_pattern(), &h, 100);
        assert_eq!(ep.embeddings.len(), 3);
        assert!(ep.validate_against(&h));
        assert_eq!(ep.size(), 1);
        assert_eq!(ep.vertex_count(), 2);
    }

    #[test]
    fn covered_vertices_union() {
        let h = host();
        let ep = EmbeddedPattern::discover(edge_pattern(), &h, 100);
        assert_eq!(ep.covered_host_vertices().len(), 4);
    }

    #[test]
    fn overlap_detection() {
        let h = host();
        let a = EmbeddedPattern::new(edge_pattern(), vec![vec![VertexId(0), VertexId(1)]]);
        let b = EmbeddedPattern::new(edge_pattern(), vec![vec![VertexId(2), VertexId(3)]]);
        assert!(!a.overlaps(&b));
        let c = EmbeddedPattern::new(edge_pattern(), vec![vec![VertexId(2), VertexId(1)]]);
        assert!(a.overlaps(&c));
        assert_eq!(a.overlapping_embedding_pairs(&c), vec![(0, 0)]);
        let _ = h;
    }

    #[test]
    fn dedup_by_vertex_set_removes_automorphic_duplicates() {
        let mut ep = EmbeddedPattern::new(
            LabeledGraph::from_parts(&[Label(1), Label(1)], &[(0, 1)]),
            vec![
                vec![VertexId(0), VertexId(1)],
                vec![VertexId(1), VertexId(0)],
                vec![VertexId(2), VertexId(3)],
            ],
        );
        ep.dedup_by_vertex_set();
        assert_eq!(ep.embeddings.len(), 2);
    }

    #[test]
    fn validate_rejects_bad_embeddings() {
        let h = host();
        // wrong label mapping
        let bad = EmbeddedPattern::new(edge_pattern(), vec![vec![VertexId(1), VertexId(0)]]);
        assert!(!bad.validate_against(&h));
        // repeated vertex
        let bad = EmbeddedPattern::new(edge_pattern(), vec![vec![VertexId(0), VertexId(0)]]);
        assert!(!bad.validate_against(&h));
        // missing edge
        let bad = EmbeddedPattern::new(edge_pattern(), vec![vec![VertexId(0), VertexId(3)]]);
        assert!(!bad.validate_against(&h));
    }
}
