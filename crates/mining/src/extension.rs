//! Generic one-edge pattern growth with embedding maintenance.
//!
//! The incremental (edge-by-edge) growth paradigm is what SpiderMine's related
//! work — gSpan/MoSS-style complete miners and SUBDUE's beam search — is built
//! on, and what the paper's Figure 2 argument contrasts spiders against. The
//! baselines in `spidermine-baselines` are built on this module; SpiderMine
//! itself grows by whole spiders instead.
//!
//! Since the eval layer landed, the handle-based entry points
//! ([`frequent_single_edges_in`], [`one_edge_extensions_in`]) are the real
//! implementation: embeddings live in an [`EmbeddingStore`] arena and
//! children grow incrementally from the parent rows in one fused pass (the
//! per-row step of
//! [`iso::extend_embeddings`](spidermine_graph::iso::extend_embeddings),
//! batched across every candidate extension) — flat appends into
//! [`FlatEmbeddings`] buckets instead of one `Vec` clone per child
//! embedding. The legacy `Vec<Embedding>`-owning entry points remain as thin
//! materializing wrappers with byte-identical output (same candidate order,
//! same caps, same sort).

use crate::embedding::EmbeddedPattern;
use crate::eval::{EmbeddingSetId, EmbeddingStore, FlatEmbeddings};
use crate::support::SupportMeasure;
use rustc_hash::FxHashMap;
use spidermine_graph::graph::{LabeledGraph, VertexId};
use spidermine_graph::iso::EdgeExtension;
use spidermine_graph::label::Label;

/// Description of a single-edge extension relative to a parent pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Extension {
    /// Attach a brand-new vertex with label `label` to pattern vertex `at`.
    Forward {
        /// Pattern vertex the new vertex is attached to.
        at: VertexId,
        /// Label of the new vertex.
        label: Label,
    },
    /// Close an edge between two existing, currently non-adjacent pattern vertices.
    Backward {
        /// Smaller-id endpoint.
        from: VertexId,
        /// Larger-id endpoint.
        to: VertexId,
    },
}

impl Extension {
    /// The equivalent delta of the incremental engine in `graph::iso`.
    pub fn as_edge_extension(self) -> EdgeExtension {
        match self {
            Extension::Forward { at, label } => EdgeExtension::NewVertex { anchor: at, label },
            Extension::Backward { from, to } => EdgeExtension::ClosingEdge { u: from, v: to },
        }
    }
}

/// A frequent one-edge extension of a parent pattern.
#[derive(Clone, Debug)]
pub struct FrequentExtension {
    /// What was added.
    pub extension: Extension,
    /// The child pattern with its embeddings.
    pub child: EmbeddedPattern,
    /// Support of the child under the measure used for mining.
    pub support: usize,
}

/// A pattern held by handle: the graph plus its embedding set in a shared
/// [`EmbeddingStore`]. What the store-backed miners (SUBDUE, MoSS) queue and
/// beam instead of owned [`EmbeddedPattern`]s.
#[derive(Clone, Debug)]
pub struct StoredPattern {
    /// The pattern graph.
    pub pattern: LabeledGraph,
    /// Handle to the pattern's embedding set.
    pub set: EmbeddingSetId,
    /// Support under the measure used for mining.
    pub support: usize,
}

/// A frequent one-edge extension produced into a shared [`EmbeddingStore`].
#[derive(Clone, Debug)]
pub struct StoredExtension {
    /// What was added.
    pub extension: Extension,
    /// The child pattern with its embedding-set handle.
    pub child: StoredPattern,
}

/// Enumerates all frequent one-edge extensions of `parent` in `host`,
/// maintaining the child embedding sets incrementally inside `store`.
///
/// One **fused pass** over the parent's flat rows grows every candidate
/// extension simultaneously (each child row is the parent row plus at most
/// one appended vertex — the same per-row extension step as
/// [`iso::extend_embeddings`](spidermine_graph::iso::extend_embeddings),
/// batched across candidates so the rows and the host adjacency are walked
/// once, not once per candidate). Children accumulate in flat
/// [`FlatEmbeddings`] buckets — no per-child-embedding allocation, no re-run
/// of the VF2 scratch matcher. `max_embeddings` caps each child set
/// (embedding lists can explode on dense graphs; the cap keeps the miner
/// memory-bounded at the cost of under-counting support for extremely
/// frequent patterns, which are never the interesting large ones).
pub fn one_edge_extensions_in(
    store: &mut EmbeddingStore,
    host: &LabeledGraph,
    parent: &LabeledGraph,
    parent_set: EmbeddingSetId,
    support_threshold: usize,
    measure: SupportMeasure,
    max_embeddings: usize,
) -> Vec<StoredExtension> {
    let mut grouped: FxHashMap<Extension, FlatEmbeddings> = FxHashMap::default();
    {
        let view = store.view(parent_set);
        let arity = view.arity();
        for row in view.rows() {
            // Forward extensions: a host neighbor of a mapped vertex, outside
            // the embedding.
            for p in parent.vertices() {
                let hp = row[p.index()];
                for &hu in host.neighbors(hp) {
                    if row.contains(&hu) {
                        continue;
                    }
                    let ext = Extension::Forward {
                        at: p,
                        label: host.label(hu),
                    };
                    let bucket = grouped
                        .entry(ext)
                        .or_insert_with(|| FlatEmbeddings::new(arity + 1));
                    if bucket.len() < max_embeddings {
                        bucket.push_extended_row(row, &[hu]);
                    } else {
                        bucket.mark_truncated();
                    }
                }
            }
            // Backward extensions: a host edge between two mapped,
            // pattern-non-adjacent vertices.
            for p in parent.vertices() {
                for q in parent.vertices() {
                    if p >= q || parent.has_edge(p, q) {
                        continue;
                    }
                    if host.has_edge(row[p.index()], row[q.index()]) {
                        let ext = Extension::Backward { from: p, to: q };
                        let bucket = grouped
                            .entry(ext)
                            .or_insert_with(|| FlatEmbeddings::new(arity));
                        if bucket.len() < max_embeddings {
                            bucket.push_row(row);
                        } else {
                            bucket.mark_truncated();
                        }
                    }
                }
            }
        }
    }
    // Deterministic order for reproducibility of the miners built on top
    // (same key as the pre-arena implementation sorted its output by).
    let mut candidates: Vec<Extension> = grouped.keys().copied().collect();
    candidates.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));

    let mut out: Vec<StoredExtension> = Vec::new();
    for extension in candidates {
        let bucket = &grouped[&extension];
        let support = bucket.view().support(measure);
        if support < support_threshold {
            continue;
        }
        let child_pattern = apply_extension(parent, extension);
        out.push(StoredExtension {
            extension,
            child: StoredPattern {
                pattern: child_pattern,
                set: store.insert_scratch(bucket),
                support,
            },
        });
    }
    out
}

/// Enumerates all frequent one-edge extensions of `parent` in `host`.
///
/// Thin materializing wrapper over [`one_edge_extensions_in`] for callers
/// that own their embedding lists; byte-identical output to the pre-arena
/// implementation.
pub fn one_edge_extensions(
    host: &LabeledGraph,
    parent: &EmbeddedPattern,
    support_threshold: usize,
    measure: SupportMeasure,
    max_embeddings: usize,
) -> Vec<FrequentExtension> {
    let mut store = EmbeddingStore::new();
    let parent_set =
        store.insert_embeddings(parent.pattern.vertex_count(), &parent.embeddings, true);
    one_edge_extensions_in(
        &mut store,
        host,
        &parent.pattern,
        parent_set,
        support_threshold,
        measure,
        max_embeddings,
    )
    .into_iter()
    .map(|s| FrequentExtension {
        extension: s.extension,
        child: EmbeddedPattern::new(s.child.pattern, store.to_embeddings(s.child.set)),
        support: s.child.support,
    })
    .collect()
}

/// Applies an extension to a pattern graph, returning the child pattern.
pub fn apply_extension(pattern: &LabeledGraph, extension: Extension) -> LabeledGraph {
    let mut child = pattern.clone();
    match extension {
        Extension::Forward { at, label } => {
            let new_v = child.add_vertex(label);
            child.add_edge(at, new_v);
        }
        Extension::Backward { from, to } => {
            child.add_edge(from, to);
        }
    }
    child
}

/// Seeds edge-by-edge mining into a shared store: all frequent single-edge
/// patterns of `host`, grouped by (label, label) unordered pair, sorted by
/// that pair.
pub fn frequent_single_edges_in(
    store: &mut EmbeddingStore,
    host: &LabeledGraph,
    support_threshold: usize,
    measure: SupportMeasure,
    max_embeddings: usize,
) -> Vec<StoredPattern> {
    let mut grouped: FxHashMap<(Label, Label), FlatEmbeddings> = FxHashMap::default();
    for (u, v) in host.edges() {
        let (lu, lv) = (host.label(u), host.label(v));
        let key = if lu <= lv { (lu, lv) } else { (lv, lu) };
        let bucket = grouped.entry(key).or_insert_with(|| FlatEmbeddings::new(2));
        if bucket.len() < max_embeddings {
            // Store the embedding with the smaller label first to match the
            // canonical pattern orientation below.
            if lu <= lv {
                bucket.push_row(&[u, v]);
            } else {
                bucket.push_row(&[v, u]);
            }
        } else {
            bucket.mark_truncated();
        }
    }
    let mut keys: Vec<(Label, Label)> = grouped.keys().copied().collect();
    keys.sort_unstable();
    let mut out = Vec::new();
    for (la, lb) in keys {
        let bucket = &grouped[&(la, lb)];
        let support = bucket.view().support(measure);
        if support < support_threshold {
            continue;
        }
        let pattern = LabeledGraph::from_parts(&[la, lb], &[(0, 1)]);
        let set = store.insert_scratch(bucket);
        out.push(StoredPattern {
            pattern,
            set,
            support,
        });
    }
    out
}

/// Seeds edge-by-edge mining: all frequent single-edge patterns of `host`.
///
/// Thin materializing wrapper over [`frequent_single_edges_in`].
pub fn frequent_single_edges(
    host: &LabeledGraph,
    support_threshold: usize,
    measure: SupportMeasure,
    max_embeddings: usize,
) -> Vec<EmbeddedPattern> {
    let mut store = EmbeddingStore::new();
    frequent_single_edges_in(&mut store, host, support_threshold, measure, max_embeddings)
        .into_iter()
        .map(|s| EmbeddedPattern::new(s.pattern, store.to_embeddings(s.set)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Host: two triangles 0-1-2 and 3-4-5 with labels (0, 1, 2) each.
    fn two_triangles() -> LabeledGraph {
        LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(2), Label(0), Label(1), Label(2)],
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        )
    }

    #[test]
    fn single_edges_are_grouped_by_label_pair() {
        let host = two_triangles();
        let singles = frequent_single_edges(&host, 2, SupportMeasure::EmbeddingCount, 100);
        assert_eq!(singles.len(), 3, "label pairs (0,1), (1,2), (0,2)");
        for ep in &singles {
            assert_eq!(ep.embeddings.len(), 2);
            assert!(ep.validate_against(&host));
        }
    }

    #[test]
    fn single_edge_threshold_filters() {
        let host = two_triangles();
        let singles = frequent_single_edges(&host, 3, SupportMeasure::EmbeddingCount, 100);
        assert!(singles.is_empty());
    }

    #[test]
    fn forward_extension_grows_the_path() {
        let host = two_triangles();
        let singles = frequent_single_edges(&host, 2, SupportMeasure::EmbeddingCount, 100);
        let edge01 = singles
            .iter()
            .find(|ep| {
                ep.pattern.label(VertexId(0)) == Label(0)
                    && ep.pattern.label(VertexId(1)) == Label(1)
            })
            .expect("edge (0,1)");
        let exts = one_edge_extensions(&host, edge01, 2, SupportMeasure::EmbeddingCount, 100);
        // Forward: attach label-2 to either endpoint; Backward: none (already all edges).
        assert!(exts
            .iter()
            .all(|e| matches!(e.extension, Extension::Forward { .. })));
        assert_eq!(exts.len(), 2);
        for e in &exts {
            assert_eq!(e.support, 2);
            assert!(e.child.validate_against(&host));
            assert_eq!(e.child.vertex_count(), 3);
        }
    }

    #[test]
    fn backward_extension_closes_the_triangle() {
        let host = two_triangles();
        // Path pattern 0-1-2 (labels 0,1,2) embedded in both triangles.
        let path = LabeledGraph::from_parts(&[Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]);
        let parent = EmbeddedPattern::discover(path, &host, 100);
        let exts = one_edge_extensions(&host, &parent, 2, SupportMeasure::EmbeddingCount, 100);
        let backward: Vec<_> = exts
            .iter()
            .filter(|e| matches!(e.extension, Extension::Backward { .. }))
            .collect();
        assert_eq!(backward.len(), 1);
        assert_eq!(backward[0].child.size(), 3);
        assert!(backward[0].child.validate_against(&host));
    }

    #[test]
    fn extension_support_threshold_is_enforced() {
        let host = two_triangles();
        let path = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let parent = EmbeddedPattern::discover(path, &host, 100);
        let exts = one_edge_extensions(&host, &parent, 3, SupportMeasure::EmbeddingCount, 100);
        assert!(exts.is_empty());
    }

    #[test]
    fn max_embeddings_caps_the_lists() {
        let host = two_triangles();
        let path = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let parent = EmbeddedPattern::discover(path, &host, 100);
        let exts = one_edge_extensions(&host, &parent, 1, SupportMeasure::EmbeddingCount, 1);
        assert!(exts.iter().all(|e| e.child.embeddings.len() <= 1));
    }

    #[test]
    fn handle_based_extensions_match_the_owned_wrapper() {
        let host = two_triangles();
        let path = LabeledGraph::from_parts(&[Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]);
        let parent = EmbeddedPattern::discover(path.clone(), &host, 100);
        let owned = one_edge_extensions(&host, &parent, 1, SupportMeasure::EmbeddingCount, 100);
        let mut store = EmbeddingStore::new();
        let parent_set = store.insert_embeddings(3, &parent.embeddings, true);
        let stored = one_edge_extensions_in(
            &mut store,
            &host,
            &path,
            parent_set,
            1,
            SupportMeasure::EmbeddingCount,
            100,
        );
        assert_eq!(owned.len(), stored.len());
        for (a, b) in owned.iter().zip(&stored) {
            assert_eq!(a.extension, b.extension);
            assert_eq!(a.support, b.child.support);
            assert_eq!(a.child.embeddings, store.to_embeddings(b.child.set));
        }
    }

    #[test]
    fn apply_extension_builds_expected_child() {
        let pattern = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let fwd = apply_extension(
            &pattern,
            Extension::Forward {
                at: VertexId(1),
                label: Label(9),
            },
        );
        assert_eq!(fwd.vertex_count(), 3);
        assert!(fwd.has_edge(VertexId(1), VertexId(2)));
        let path3 = LabeledGraph::from_parts(&[Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]);
        let back = apply_extension(
            &path3,
            Extension::Backward {
                from: VertexId(0),
                to: VertexId(2),
            },
        );
        assert_eq!(back.edge_count(), 3);
    }
}
