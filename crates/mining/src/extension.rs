//! Generic one-edge pattern growth with embedding maintenance.
//!
//! The incremental (edge-by-edge) growth paradigm is what SpiderMine's related
//! work — gSpan/MoSS-style complete miners and SUBDUE's beam search — is built
//! on, and what the paper's Figure 2 argument contrasts spiders against. The
//! baselines in `spidermine-baselines` are built on this module; SpiderMine
//! itself grows by whole spiders instead.

use crate::embedding::{EmbeddedPattern, Embedding};
use crate::support::SupportMeasure;
use rustc_hash::FxHashMap;
use spidermine_graph::graph::{LabeledGraph, VertexId};
use spidermine_graph::label::Label;

/// Description of a single-edge extension relative to a parent pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Extension {
    /// Attach a brand-new vertex with label `label` to pattern vertex `at`.
    Forward {
        /// Pattern vertex the new vertex is attached to.
        at: VertexId,
        /// Label of the new vertex.
        label: Label,
    },
    /// Close an edge between two existing, currently non-adjacent pattern vertices.
    Backward {
        /// Smaller-id endpoint.
        from: VertexId,
        /// Larger-id endpoint.
        to: VertexId,
    },
}

/// A frequent one-edge extension of a parent pattern.
#[derive(Clone, Debug)]
pub struct FrequentExtension {
    /// What was added.
    pub extension: Extension,
    /// The child pattern with its embeddings.
    pub child: EmbeddedPattern,
    /// Support of the child under the measure used for mining.
    pub support: usize,
}

/// Enumerates all frequent one-edge extensions of `parent` in `host`.
///
/// `max_embeddings` caps the number of embeddings retained per child pattern
/// (embedding lists can explode on dense graphs; the cap keeps the miner
/// memory-bounded at the cost of under-counting support for extremely frequent
/// patterns, which are never the interesting large ones).
pub fn one_edge_extensions(
    host: &LabeledGraph,
    parent: &EmbeddedPattern,
    support_threshold: usize,
    measure: SupportMeasure,
    max_embeddings: usize,
) -> Vec<FrequentExtension> {
    let mut grouped: FxHashMap<Extension, Vec<Embedding>> = FxHashMap::default();
    let pattern = &parent.pattern;
    for embedding in &parent.embeddings {
        // Forward extensions: a host neighbor of a mapped vertex, outside the embedding.
        for p in pattern.vertices() {
            let hp = embedding[p.index()];
            for &hu in host.neighbors(hp) {
                if embedding.contains(&hu) {
                    continue;
                }
                let ext = Extension::Forward {
                    at: p,
                    label: host.label(hu),
                };
                let bucket = grouped.entry(ext).or_default();
                if bucket.len() < max_embeddings {
                    let mut child_embedding = embedding.clone();
                    child_embedding.push(hu);
                    bucket.push(child_embedding);
                }
            }
        }
        // Backward extensions: host edge between two mapped, pattern-non-adjacent vertices.
        for p in pattern.vertices() {
            for q in pattern.vertices() {
                if p >= q || pattern.has_edge(p, q) {
                    continue;
                }
                if host.has_edge(embedding[p.index()], embedding[q.index()]) {
                    let ext = Extension::Backward { from: p, to: q };
                    let bucket = grouped.entry(ext).or_default();
                    if bucket.len() < max_embeddings {
                        bucket.push(embedding.clone());
                    }
                }
            }
        }
    }

    let mut out: Vec<FrequentExtension> = Vec::new();
    for (extension, embeddings) in grouped {
        let child_pattern = apply_extension(pattern, extension);
        let support = measure.compute(child_pattern.vertex_count(), &embeddings);
        if support >= support_threshold {
            out.push(FrequentExtension {
                extension,
                child: EmbeddedPattern::new(child_pattern, embeddings),
                support,
            });
        }
    }
    // Deterministic order for reproducibility of the miners built on top.
    out.sort_by(|a, b| format!("{:?}", a.extension).cmp(&format!("{:?}", b.extension)));
    out
}

/// Applies an extension to a pattern graph, returning the child pattern.
pub fn apply_extension(pattern: &LabeledGraph, extension: Extension) -> LabeledGraph {
    let mut child = pattern.clone();
    match extension {
        Extension::Forward { at, label } => {
            let new_v = child.add_vertex(label);
            child.add_edge(at, new_v);
        }
        Extension::Backward { from, to } => {
            child.add_edge(from, to);
        }
    }
    child
}

/// Seeds edge-by-edge mining: all frequent single-edge patterns of `host`,
/// grouped by (label, label) unordered pair.
pub fn frequent_single_edges(
    host: &LabeledGraph,
    support_threshold: usize,
    measure: SupportMeasure,
    max_embeddings: usize,
) -> Vec<EmbeddedPattern> {
    let mut grouped: FxHashMap<(Label, Label), Vec<Embedding>> = FxHashMap::default();
    for (u, v) in host.edges() {
        let (lu, lv) = (host.label(u), host.label(v));
        let key = if lu <= lv { (lu, lv) } else { (lv, lu) };
        let bucket = grouped.entry(key).or_default();
        if bucket.len() < max_embeddings {
            // Store the embedding with the smaller label first to match the
            // canonical pattern orientation below.
            if lu <= lv {
                bucket.push(vec![u, v]);
            } else {
                bucket.push(vec![v, u]);
            }
        }
    }
    let mut out = Vec::new();
    for ((la, lb), embeddings) in grouped {
        let pattern = LabeledGraph::from_parts(&[la, lb], &[(0, 1)]);
        let support = measure.compute(2, &embeddings);
        if support >= support_threshold {
            out.push(EmbeddedPattern::new(pattern, embeddings));
        }
    }
    out.sort_by_key(|ep| {
        (
            ep.pattern.label(VertexId(0)).0,
            ep.pattern.label(VertexId(1)).0,
        )
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Host: two triangles 0-1-2 and 3-4-5 with labels (0, 1, 2) each.
    fn two_triangles() -> LabeledGraph {
        LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(2), Label(0), Label(1), Label(2)],
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        )
    }

    #[test]
    fn single_edges_are_grouped_by_label_pair() {
        let host = two_triangles();
        let singles = frequent_single_edges(&host, 2, SupportMeasure::EmbeddingCount, 100);
        assert_eq!(singles.len(), 3, "label pairs (0,1), (1,2), (0,2)");
        for ep in &singles {
            assert_eq!(ep.embeddings.len(), 2);
            assert!(ep.validate_against(&host));
        }
    }

    #[test]
    fn single_edge_threshold_filters() {
        let host = two_triangles();
        let singles = frequent_single_edges(&host, 3, SupportMeasure::EmbeddingCount, 100);
        assert!(singles.is_empty());
    }

    #[test]
    fn forward_extension_grows_the_path() {
        let host = two_triangles();
        let singles = frequent_single_edges(&host, 2, SupportMeasure::EmbeddingCount, 100);
        let edge01 = singles
            .iter()
            .find(|ep| {
                ep.pattern.label(VertexId(0)) == Label(0)
                    && ep.pattern.label(VertexId(1)) == Label(1)
            })
            .expect("edge (0,1)");
        let exts = one_edge_extensions(&host, edge01, 2, SupportMeasure::EmbeddingCount, 100);
        // Forward: attach label-2 to either endpoint; Backward: none (already all edges).
        assert!(exts
            .iter()
            .all(|e| matches!(e.extension, Extension::Forward { .. })));
        assert_eq!(exts.len(), 2);
        for e in &exts {
            assert_eq!(e.support, 2);
            assert!(e.child.validate_against(&host));
            assert_eq!(e.child.vertex_count(), 3);
        }
    }

    #[test]
    fn backward_extension_closes_the_triangle() {
        let host = two_triangles();
        // Path pattern 0-1-2 (labels 0,1,2) embedded in both triangles.
        let path = LabeledGraph::from_parts(&[Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]);
        let parent = EmbeddedPattern::discover(path, &host, 100);
        let exts = one_edge_extensions(&host, &parent, 2, SupportMeasure::EmbeddingCount, 100);
        let backward: Vec<_> = exts
            .iter()
            .filter(|e| matches!(e.extension, Extension::Backward { .. }))
            .collect();
        assert_eq!(backward.len(), 1);
        assert_eq!(backward[0].child.size(), 3);
        assert!(backward[0].child.validate_against(&host));
    }

    #[test]
    fn extension_support_threshold_is_enforced() {
        let host = two_triangles();
        let path = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let parent = EmbeddedPattern::discover(path, &host, 100);
        let exts = one_edge_extensions(&host, &parent, 3, SupportMeasure::EmbeddingCount, 100);
        assert!(exts.is_empty());
    }

    #[test]
    fn max_embeddings_caps_the_lists() {
        let host = two_triangles();
        let path = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let parent = EmbeddedPattern::discover(path, &host, 100);
        let exts = one_edge_extensions(&host, &parent, 1, SupportMeasure::EmbeddingCount, 1);
        assert!(exts.iter().all(|e| e.child.embeddings.len() <= 1));
    }

    #[test]
    fn apply_extension_builds_expected_child() {
        let pattern = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let fwd = apply_extension(
            &pattern,
            Extension::Forward {
                at: VertexId(1),
                label: Label(9),
            },
        );
        assert_eq!(fwd.vertex_count(), 3);
        assert!(fwd.has_edge(VertexId(1), VertexId(2)));
        let path3 = LabeledGraph::from_parts(&[Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]);
        let back = apply_extension(
            &path3,
            Extension::Backward {
                from: VertexId(0),
                to: VertexId(2),
            },
        );
        assert_eq!(back.edge_count(), 3);
    }
}
